//! The discrete-event simulation engine.
//!
//! A fully deterministic event loop: events fire in `(time, sequence)`
//! order, so identical inputs give identical runs. The engine implements
//! the *mechanics* of Fig. 7 — queues, links, host injection, controller
//! message transport — and delegates all *behaviour* (forwarding, tagging,
//! state) to a [`DataPlane`].
//!
//! Every processing step is recorded into an `edn-core`
//! [`TraceBuilder`], so a finished run yields the network trace needed by
//! the correctness checker.
//!
//! # The sequence key
//!
//! Timestamp ties are broken by a *per-entity* sequence: every event
//! carries a 64-bit key packing `(creating entity, that entity's creation
//! counter)`, where an entity is a switch, a host, the controller, or the
//! pre-run environment (initial injections). The key is assigned when the
//! event is created, from state local to the creating entity — which is
//! what lets a sharded run (see [`crate::shard`]) compute the *same* keys
//! on any number of threads and stay byte-identical to the
//! single-threaded engine: an entity lives on exactly one shard, and each
//! entity's dispatch sequence is independent of the sharding (induction
//! over the global key order).
//!
//! # Sharding
//!
//! [`Engine::with_shards`] splits the topology into `K` shards (greedy
//! BFS edge-cut, [`crate::shard::Partition`]), each with its own event
//! queue, data-plane clone, packet arena, and trace recorder, run on `K`
//! threads under conservative lookahead synchronization: shards advance
//! through shared time windows no wider than the smallest cut-link
//! latency (and the controller latency), so a cross-shard packet always
//! lands in a strictly later window and no shard ever receives an event
//! "in its past". [`Engine::finish`] merges the per-shard records back
//! into the exact single-threaded global order.

use std::collections::{HashMap, HashSet};

use edn_core::{NetworkTrace, TraceBuilder, TraceMode};
use edn_obs::{FlightEvent, FlightRecorder, MetricsLevel, Registry, Stopwatch};
use netkat::{Loc, Packet, PacketId};

use crate::channel::{ChannelDir, ChannelFate, ChannelModel};
use crate::logic::{BoxedHosts, CtrlMsg, DataPlane, PacketPath, StepResultId, CONTROLLER_NODE};
use crate::metrics::{self, EngineMetrics, FLIGHT_CAPACITY};
use crate::queue::{EventQueue, QueueKind};
use crate::shard::{self, Partition, Remote};
use crate::source::WorkloadSource;
use crate::stats::{Delivery, Drop, DropReason, Stats, StatsMode};
use crate::time::SimTime;
use crate::topology::{SimParams, SimTopology};

/// Default payload size for injected packets (an Ethernet-ish frame).
pub const DEFAULT_PACKET_SIZE: u32 = 1_500;

/// The dense entity id of the pre-run environment (initial injections).
pub(crate) const ENV_ENTITY: u32 = 0;
/// The dense entity id of the controller.
pub(crate) const CTRL_ENTITY: u32 = 1;
/// Sentinel cause for control messages that are plumbing, not semantics
/// (acks, retransmissions): they carry no happens-before obligation, so
/// the causality bookkeeping skips them. Dropping an HB edge can only
/// weaken the checker's obligations, never invent a violation.
pub(crate) const NO_CAUSE: (u32, u32) = (u32::MAX, u32::MAX);
/// Bits of the packed sequence key reserved for the per-entity counter.
const SEQ_SHIFT: u32 = 40;

/// Packs `(entity, counter)` into the queue's 64-bit tie-break key.
pub(crate) fn pack_seq(sender: u32, counter: u64) -> u64 {
    debug_assert!(counter < 1 << SEQ_SHIFT, "per-entity event counter overflow");
    ((sender as u64) << SEQ_SHIFT) | counter
}

/// An event's full ordering key: fire time plus the packed sequence.
pub(crate) type EventKey = (SimTime, u64);

/// A scheduled step function over simulated time: each `(time, value)`
/// entry sets the value from `time` onward, until a later entry replaces
/// it. Kept sorted by time; writes at an already-scheduled time overwrite
/// in place (**last-write-wins**), so repeated fail/restore cycles and
/// re-scripted scenario actions are always well-defined.
pub(crate) type Timeline<T> = Vec<(SimTime, T)>;

/// Inserts `(time, value)` into a sorted timeline, overwriting any
/// existing entry at exactly `time`.
fn timeline_set<T>(timeline: &mut Timeline<T>, time: SimTime, value: T) {
    let i = timeline.partition_point(|&(at, _)| at < time);
    match timeline.get_mut(i) {
        Some(entry) if entry.0 == time => entry.1 = value,
        _ => timeline.insert(i, (time, value)),
    }
}

/// The timeline's value at `t`: the most recent entry at or before `t`,
/// or `default` before the first entry (and for an empty timeline).
fn timeline_at<T: Copy>(timeline: &Timeline<T>, t: SimTime, default: T) -> T {
    match timeline.partition_point(|&(at, _)| at <= t) {
        0 => default,
        i => timeline[i - 1].1,
    }
}

/// Dense entity numbering: 0 = environment, 1 = controller, then every
/// switch, then every host, in topology order — identical however the
/// topology is later partitioned.
#[derive(Clone, Debug, Default)]
pub(crate) struct EntityMap {
    map: HashMap<u64, u32, netkat::FxBuildHasher>,
}

impl EntityMap {
    fn build(topo: &SimTopology) -> EntityMap {
        let mut map: HashMap<u64, u32, netkat::FxBuildHasher> = HashMap::default();
        let mut next = CTRL_ENTITY + 1;
        // First occurrence wins: `SimTopology::new` tolerates duplicate
        // switch entries, and the numbering must stay dense (counters are
        // indexed by it) and identical across shard counts.
        for &sw in topo.switches() {
            map.entry(sw).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
        }
        for (h, _) in topo.hosts() {
            map.insert(h, next);
            next += 1;
        }
        EntityMap { map }
    }

    /// The dense id of a switch or host.
    pub(crate) fn dense(&self, node: u64) -> u32 {
        self.map.get(&node).copied().expect("node is part of the topology")
    }

    /// Total entity count (environment and controller included).
    fn len(&self) -> usize {
        self.map.len() + 2
    }
}

/// The trace parent of an arriving packet: a record of this shard, or a
/// record of another shard (the egress record on the far side of a cut
/// link).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Parent {
    /// A record of this shard's trace.
    Local(usize),
    /// `(shard, local index)` of a record on another shard.
    Remote(u32, u32),
}

impl Parent {
    fn local(self) -> Option<usize> {
        match self {
            Parent::Local(i) => Some(i),
            Parent::Remote(..) => None,
        }
    }
}

/// Pending events carry [`PacketId`]s into the owning shard's arena, never
/// owned packets: forking an event (multicast) or recording it into the
/// trace copies four bytes.
#[derive(Clone, Debug)]
enum EventKind {
    /// A host pushes a packet onto its attachment link. `sender` is the
    /// host's dense entity id (events this dispatch creates are its);
    /// `attach_sender` is the attachment switch's (stamped onto the
    /// resulting arrival).
    Inject { host: u64, packet: PacketId, size: u32, sender: u32, attach_sender: u32 },
    /// A packet arrives at a location (switch ingress or host). `sender`
    /// is the dense entity id of `loc.sw` (or of the host).
    Arrive { loc: Loc, packet: PacketId, size: u32, parent: Parent, from_host: bool, sender: u32 },
    /// A switch-to-controller message arrives at the controller; `cause`
    /// is the `(shard, local trace index)` of the packet processing step
    /// that produced it.
    Notify { msg: CtrlMsg, cause: (u32, u32) },
    /// A controller command arrives at a switch.
    Deliver { sw: u64, msg: CtrlMsg },
    /// A data-plane-requested timer fires at a switch (or, with
    /// `node == CONTROLLER_NODE`, at the controller). Always shard-local:
    /// timers are requested only by interactions that already ran on the
    /// node's owning shard.
    Timer { node: u64 },
}

/// The metric slot of an event kind (`EngineMetrics::dispatched`).
fn kind_index(kind: &EventKind) -> usize {
    match kind {
        EventKind::Inject { .. } => 0,
        EventKind::Arrive { .. } => 1,
        EventKind::Notify { .. } => 2,
        EventKind::Deliver { .. } => 3,
        EventKind::Timer { .. } => 4,
    }
}

/// Flight-recorder label and subject entity of an event kind.
fn flight_info(kind: &EventKind) -> (&'static str, u64) {
    match kind {
        EventKind::Inject { host, .. } => ("inject", *host),
        EventKind::Arrive { loc, .. } => ("arrive", loc.sw),
        EventKind::Notify { .. } => ("notify", 0),
        EventKind::Deliver { sw, .. } => ("deliver", *sw),
        EventKind::Timer { node } => ("timer", *node),
    }
}

/// What sits on the far side of an egress location — resolved once at
/// construction, so the per-hop path pays **one** map probe instead of the
/// former host-map probe plus link-map probe. Carries the destination
/// entity's dense id so per-hop key assignment needs no further lookup.
#[derive(Clone, Copy, Debug)]
enum Egress {
    /// A host is attached here (`id`, dense entity).
    Host(u64, u32),
    /// An inter-switch link (index into `topo.links()`) starts here;
    /// second field is the destination switch's dense entity.
    Link(u32, u32),
}

/// The egress map probes once per output; [`Loc`]'s derived `Hash` feeds
/// two `u64` writes straight through [`netkat::FxHasher`], skipping
/// SipHash's per-byte setup.
type EgressMap = HashMap<Loc, Egress, netkat::FxBuildHasher>;

/// The result of a finished run.
#[derive(Debug)]
pub struct RunResult<D> {
    /// The recorded network trace (Section 2 structure).
    pub trace: NetworkTrace,
    /// Deliveries, drops, and counters.
    pub stats: Stats,
    /// The data plane, with whatever internal state it accumulated. After
    /// a sharded run this is the shard-0 instance with the other shards'
    /// state folded back in via [`DataPlane::absorb_shard`].
    pub dataplane: D,
    /// The run's telemetry ([`edn_obs::Registry`]): empty unless the
    /// engine ran with [`MetricsLevel::Counters`] or
    /// [`MetricsLevel::Full`] (see [`Engine::with_metrics`]). Per-shard
    /// registries are folded in shard order, so the `sim`-scoped section
    /// is byte-identical across shard counts.
    pub metrics: Registry,
}

/// One shard's complete simulation state: the event queue, the data-plane
/// instance covering its switches, its arena-backed trace recorder, and —
/// in multi-shard mode — the key-tagged logs the final merge interleaves.
/// A single-threaded engine is exactly one `Core` with `multi == false`.
pub(crate) struct Core<D: DataPlane> {
    pub(crate) me: u32,
    multi: bool,
    /// Record event keys for the trace merge? (`multi` and full tracing.)
    record_full: bool,
    pub(crate) topo: SimTopology,
    params: SimParams,
    pub(crate) dataplane: D,
    hosts: BoxedHosts,
    queue: EventQueue,
    /// Slab of pending event payloads, indexed by the keys in `queue`.
    slots: Vec<Option<EventKind>>,
    /// Recycled slab slots.
    free_slots: Vec<u32>,
    now: SimTime,
    /// The shard's trace recorder; it owns the [`PacketArena`]
    /// (`netkat::PacketArena`) every in-flight packet of this shard is
    /// interned in.
    pub(crate) trace: TraceBuilder,
    /// Which packet representation the data plane is driven through.
    packet_path: PacketPath,
    /// Whether per-packet delivery/drop streams are retained.
    stats_mode: StatsMode,
    pub(crate) stats: Stats,
    /// What each egress location leads to (host or link), resolved once at
    /// construction.
    egress: EgressMap,
    /// Per-link transmission backlog, indexed like `topo.links()`: when the
    /// link is next free. Only this shard's links advance.
    link_free: Vec<SimTime>,
    /// Per-link up/down schedule, indexed like `topo.links()`: `true`
    /// entries take the link down, `false` entries bring it back up.
    /// Empty = the link never fails.
    pub(crate) link_state: Vec<Timeline<bool>>,
    /// Scheduled overrides of the switch↔controller latency (spikes);
    /// empty = `params.controller_latency` throughout.
    pub(crate) ctrl_latency: Timeline<SimTime>,
    /// Dense entity numbering (identical on every shard).
    entities: EntityMap,
    /// Per-entity creation counters; only entities owned by this shard
    /// ever advance.
    counters: Vec<u64>,
    /// The control-channel fault model (ideal short-circuits every site).
    channel: ChannelModel,
    /// Per-entity control-message send counters feeding the fault stream;
    /// like `counters`, only entities owned by this shard ever advance,
    /// which is what keeps lossy runs shard-invariant.
    chan_counts: Vec<u64>,
    /// Reused per-hop step buffer (see
    /// [`DataPlane::process_arena_into`]).
    step_buf: StepResultId,
    /// Trace indices whose processing sent something to the controller
    /// (single-shard mode only; sharded runs log and replay instead).
    ctrl_causes: Vec<usize>,
    /// Per switch: how many of `ctrl_causes` have been delivered to it.
    ctrl_delivered: HashMap<u64, usize>,
    /// Per switch: how many of `ctrl_causes` are already linked.
    ctrl_linked: HashMap<u64, usize>,
    /// Shard ownership of switches and hosts (multi-shard mode).
    owners: Option<Partition>,
    /// Cross-shard events created this window, per target shard.
    pub(crate) outbox: Vec<Vec<Remote>>,
    /// Per dispatched event that recorded anything: `(key, record count)`.
    /// The merge replays these to rebuild the global record order.
    pub(crate) record_runs: Vec<(EventKey, u32)>,
    /// Records whose trace parent lives on another shard.
    pub(crate) remote_parents: Vec<(u32, (u32, u32))>,
    /// The key of every delivery in `stats.deliveries`, for the merge.
    pub(crate) delivery_keys: Vec<EventKey>,
    /// The key of every drop in `stats.drops`, for the merge.
    pub(crate) drop_keys: Vec<EventKey>,
    /// Controller-shard log of Notify dispatches: `(key, cause)`.
    pub(crate) notify_log: Vec<(EventKey, (u32, u32))>,
    /// Log of Deliver dispatches: `(key, switch)`.
    pub(crate) deliver_log: Vec<(EventKey, u64)>,
    /// First switch step after one or more delivers: `(key, switch,
    /// local ingress index)` — where causal linking happens.
    pub(crate) link_markers: Vec<(EventKey, u64, u32)>,
    /// Switches with a dispatched-but-unlinked controller delivery.
    pending_deliver: HashSet<u64, netkat::FxBuildHasher>,
    /// Lazy injection stream (single-shard mode only; forces solo).
    source: Option<SourceState>,
    /// Streaming trace observer (single-shard mode only; forces solo).
    observer: Option<Box<dyn edn_core::TraceObserver + Send>>,
    /// Telemetry accumulators (no-ops unless metrics are on).
    pub(crate) metrics: EngineMetrics,
}

/// A registered [`WorkloadSource`] plus its reserved environment-sequence
/// window: event `seq` of the source maps to key `pack_seq(ENV, base+seq)`.
struct SourceState {
    src: Box<dyn WorkloadSource + Send>,
    base: u64,
    total: u64,
}

impl<D: DataPlane> Core<D> {
    #[allow(clippy::too_many_arguments)]
    fn build(
        topo: SimTopology,
        params: SimParams,
        dataplane: D,
        hosts: BoxedHosts,
        queue: QueueKind,
        mode: TraceMode,
        packet_path: PacketPath,
        stats_mode: StatsMode,
        me: u32,
        shards: u32,
        owners: Option<Partition>,
        metrics: EngineMetrics,
        channel: ChannelModel,
    ) -> Core<D> {
        let entities = EntityMap::build(&topo);
        let mut egress = EgressMap::default();
        for (i, l) in topo.links().iter().enumerate() {
            egress.insert(l.src, Egress::Link(i as u32, entities.dense(l.dst.sw)));
        }
        for (h, loc) in topo.hosts() {
            egress.insert(loc, Egress::Host(h, entities.dense(h)));
        }
        let n_links = topo.links().len();
        let n_entities = entities.len();
        let multi = shards > 1;
        Core {
            me,
            multi,
            record_full: multi && mode == TraceMode::Full,
            topo,
            params,
            dataplane,
            hosts,
            queue: EventQueue::new(queue),
            slots: Vec::new(),
            free_slots: Vec::new(),
            now: SimTime::ZERO,
            trace: TraceBuilder::with_mode(mode),
            packet_path,
            stats_mode,
            stats: Stats::default(),
            egress,
            link_free: vec![SimTime::ZERO; n_links],
            link_state: vec![Vec::new(); n_links],
            ctrl_latency: Vec::new(),
            entities,
            counters: vec![0; n_entities],
            channel,
            chan_counts: vec![0; n_entities],
            step_buf: StepResultId::default(),
            ctrl_causes: Vec::new(),
            ctrl_delivered: HashMap::new(),
            ctrl_linked: HashMap::new(),
            owners,
            outbox: vec![Vec::new(); shards as usize],
            record_runs: Vec::new(),
            remote_parents: Vec::new(),
            delivery_keys: Vec::new(),
            drop_keys: Vec::new(),
            notify_log: Vec::new(),
            deliver_log: Vec::new(),
            link_markers: Vec::new(),
            pending_deliver: HashSet::default(),
            source: None,
            observer: None,
            metrics,
        }
    }

    /// The switch↔controller latency in effect at the current simulated
    /// time (scheduled spikes override `params.controller_latency`).
    fn controller_latency(&self) -> SimTime {
        timeline_at(&self.ctrl_latency, self.now, self.params.controller_latency)
    }

    fn next_seq(&mut self, sender: u32) -> u64 {
        let counter = &mut self.counters[sender as usize];
        let seq = pack_seq(sender, *counter);
        *counter += 1;
        seq
    }

    fn push_keyed(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        // The queue holds a reference to the packet an event carries: in a
        // recycling (stats-only) arena this pins its slot until the event
        // is dispatched. Append-only arenas make retain a no-op.
        if let EventKind::Inject { packet, .. } | EventKind::Arrive { packet, .. } = kind {
            self.trace.arena_mut().retain(packet);
        }
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                self.slots.push(Some(kind));
                (self.slots.len() - 1) as u32
            }
        };
        self.queue.push((time, seq, slot));
    }

    /// [`push_keyed`](Core::push_keyed) for an event this dispatch (or
    /// host-admission step) *creates*: observes the creation-to-fire
    /// sim-time latency exactly once per event, at its unique creation
    /// site — which is what keeps the latency histogram byte-identical
    /// across shard counts. [`receive`](Core::receive) and the pre-run
    /// injection paths use raw `push_keyed`: cross-shard events were
    /// observed on the creating side, and pre-run injections are
    /// workload admissions, not engine-scheduled delays.
    fn schedule_local(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        if self.metrics.on {
            self.metrics.observe_scheduled(time, self.now);
        }
        self.push_keyed(time, seq, kind);
    }

    /// Observes a cross-shard send (the caller pushes into the outbox):
    /// the creating side owns the event's latency observation.
    fn observe_remote(&mut self, time: SimTime) {
        if self.metrics.on {
            self.metrics.observe_scheduled(time, self.now);
            self.metrics.outbox_events += 1;
        }
    }

    /// The shard owning `node`, defaulting to shard 0 for nodes outside
    /// the topology (which never receive packets).
    fn owner_of(&self, node: u64) -> u32 {
        match &self.owners {
            Some(p) => p.owner_of(node).unwrap_or(0),
            None => 0,
        }
    }

    /// Draws the next control-channel fault-stream counter for `entity`.
    /// Advances only on the owning shard, in global dispatch order, so
    /// the fault pattern is identical at every shard count.
    fn chan_count(&mut self, entity: u32) -> u64 {
        let c = &mut self.chan_counts[entity as usize];
        let v = *c;
        *c += 1;
        v
    }

    /// Records one channel fate into the metrics (and, on a drop, the
    /// flight recorder, so a degraded dump shows the message-level cause).
    fn note_channel(&mut self, fate: &ChannelFate, node: u64) {
        if !self.metrics.on {
            return;
        }
        match fate.copies {
            0 => self.metrics.chan_dropped += 1,
            2 => self.metrics.chan_duplicated += 1,
            _ => {}
        }
        if fate.reordered {
            self.metrics.chan_reordered += 1;
        }
        if fate.copies == 0 {
            if let Some(fr) = &self.metrics.flight {
                fr.record(FlightEvent {
                    t_us: self.now.as_micros(),
                    seq: 0,
                    kind: "drop",
                    node,
                    depth: self.queue.len() as u64,
                });
            }
        }
    }

    /// Schedules one switch→controller message (`Notify`) through the
    /// channel model: the fate is a pure function of the sending entity's
    /// fault-stream counter, and each surviving copy gets its own
    /// sequence key from the sender. The ideal model takes the exact
    /// pre-fault-model path (one copy, zero extra delay, no counters).
    fn send_notify(&mut self, node: u64, sender: u32, msg: CtrlMsg, cause: (u32, u32)) {
        let base = self.now + self.controller_latency();
        let fate = if self.channel.is_ideal() {
            ChannelFate::CLEAN
        } else {
            let counter = self.chan_count(sender);
            let f = self.channel.fate(ChannelDir::ToCtrl, node, counter);
            self.note_channel(&f, node);
            f
        };
        for i in 0..fate.copies as usize {
            let t = base + SimTime::from_micros(fate.delay_us[i]);
            let seq = self.next_seq(sender);
            if self.me == 0 {
                self.schedule_local(t, seq, EventKind::Notify { msg, cause });
            } else {
                self.observe_remote(t);
                self.outbox[0].push(Remote::Notify { time: t, seq, msg, cause });
            }
        }
    }

    /// Schedules one controller→switch command (`Deliver`) through the
    /// channel model; `delay` is the data plane's own scheduling offset
    /// (e.g. update-wave spacing), applied on top of the controller
    /// latency before any channel jitter.
    fn send_deliver(&mut self, sw: u64, msg: CtrlMsg, delay: SimTime) {
        let base = self.now + self.controller_latency() + delay;
        let fate = if self.channel.is_ideal() {
            ChannelFate::CLEAN
        } else {
            let counter = self.chan_count(CTRL_ENTITY);
            let f = self.channel.fate(ChannelDir::ToSwitch, sw, counter);
            self.note_channel(&f, sw);
            f
        };
        for i in 0..fate.copies as usize {
            let t = base + SimTime::from_micros(fate.delay_us[i]);
            let seq = self.next_seq(CTRL_ENTITY);
            let target = self.owner_of(sw);
            if target == self.me {
                self.schedule_local(t, seq, EventKind::Deliver { sw, msg });
            } else {
                self.observe_remote(t);
                self.outbox[target as usize].push(Remote::Deliver { time: t, seq, sw, msg });
            }
        }
    }

    /// Post-interaction drain: forwards the data plane's channel telemetry
    /// to the flight recorder and schedules its timer requests. Called
    /// after every plane interaction (packet step, notify, deliver,
    /// timer), always on the node's owning shard, so timer events are
    /// shard-local by construction.
    fn drain_plane(&mut self) {
        for (kind, node) in self.dataplane.drain_channel_events() {
            if let Some(fr) = &self.metrics.flight {
                fr.record(FlightEvent {
                    t_us: self.now.as_micros(),
                    seq: 0,
                    kind,
                    node,
                    depth: self.queue.len() as u64,
                });
            }
        }
        for (t, node) in self.dataplane.drain_timers() {
            let entity =
                if node == CONTROLLER_NODE { CTRL_ENTITY } else { self.entities.dense(node) };
            let seq = self.next_seq(entity);
            self.schedule_local(t.max(self.now), seq, EventKind::Timer { node });
        }
    }

    /// The earliest pending fire time in microseconds (`u64::MAX` when
    /// idle) — the windowed scheduler's per-round report.
    pub(crate) fn next_time_us(&mut self) -> u64 {
        match self.queue.pop() {
            Some(key) => {
                let t = key.0.as_micros();
                self.queue.push(key);
                t
            }
            None => u64::MAX,
        }
    }

    /// Accepts a cross-shard event into the local queue (between windows).
    pub(crate) fn receive(&mut self, msg: Remote) {
        match msg {
            Remote::Arrive { time, seq, loc, packet, size, parent, sender } => {
                let packet = self.trace.arena_mut().intern(packet);
                self.push_keyed(
                    time,
                    seq,
                    EventKind::Arrive {
                        loc,
                        packet,
                        size,
                        parent: Parent::Remote(parent.0, parent.1),
                        from_host: false,
                        sender,
                    },
                );
            }
            Remote::Notify { time, seq, msg, cause } => {
                self.push_keyed(time, seq, EventKind::Notify { msg, cause });
            }
            Remote::Deliver { time, seq, sw, msg } => {
                self.push_keyed(time, seq, EventKind::Deliver { sw, msg });
            }
        }
    }

    /// Hands this window's cross-shard events to the target inboxes.
    pub(crate) fn flush_outbox(&mut self, inboxes: &[std::sync::Mutex<Vec<Remote>>]) {
        for (target, pending) in self.outbox.iter_mut().enumerate() {
            if !pending.is_empty() {
                inboxes[target].lock().expect("inbox lock poisoned").append(pending);
            }
        }
    }

    /// Runs the solo event loop until the queue empties or `deadline`
    /// passes (inclusive).
    fn run_solo(&mut self, deadline: SimTime) {
        if self.source.is_some() {
            return self.run_solo_streaming(deadline);
        }
        while let Some(key) = self.queue.pop() {
            let (time, seq, slot) = key;
            if time > deadline {
                // Past the horizon: keep the event pending (same key, so
                // the order is unchanged) for a later `run` call.
                self.queue.push(key);
                break;
            }
            let kind = self.slots[slot as usize].take().expect("queued slots are filled");
            self.free_slots.push(slot);
            self.now = time;
            self.dispatch((time, seq), kind);
        }
    }

    /// The solo loop with a lazy source attached: before every pop, pump
    /// source events up to the earlier of the next queued fire time and the
    /// deadline. Environment keys sort below every derived key at equal
    /// times (entity id 0), and the queue totally orders whatever is
    /// pushed, so pumping just-in-time leaves the dispatch order exactly
    /// what a pre-materialized batch would have produced.
    fn run_solo_streaming(&mut self, deadline: SimTime) {
        loop {
            // Admit source events up to the next queued fire time — or,
            // when the queue is idle, just the earliest pending time slice.
            // An idle queue must not admit the whole source: lazy admission
            // is what keeps a recycling arena at the in-flight high-water
            // mark instead of the full workload size.
            let mut limit = self.next_time_us();
            if limit == u64::MAX {
                if let Some(t) = self.source_peek_us() {
                    limit = t;
                }
            }
            self.pump_source(limit.min(deadline.as_micros()));
            let Some(key) = self.queue.pop() else { break };
            let (time, seq, slot) = key;
            if time > deadline {
                self.queue.push(key);
                break;
            }
            let kind = self.slots[slot as usize].take().expect("queued slots are filled");
            self.free_slots.push(slot);
            self.now = time;
            self.dispatch((time, seq), kind);
        }
    }

    /// The attached source's earliest pending fire time in microseconds,
    /// if any.
    fn source_peek_us(&self) -> Option<u64> {
        self.source.as_ref().and_then(|st| st.src.peek_time()).map(|t| t.as_micros())
    }

    /// Drains source events with fire time at or below `limit_us` into the
    /// queue; later events stay in the source for a later pump (or a later
    /// `run` call — a source survives the deadline like queued events do).
    fn pump_source(&mut self, limit_us: u64) {
        let Some(mut st) = self.source.take() else { return };
        let sample = if self.metrics.on {
            self.metrics.pump_calls += 1;
            self.metrics.full && self.metrics.pump_calls & 1023 == 1
        } else {
            false
        };
        let sw = sample.then(Stopwatch::start);
        let mut admitted = 0u64;
        while st.src.peek_time().is_some_and(|t| t.as_micros() <= limit_us) {
            let ev = st.src.next_event().expect("peek_time implies a next event");
            debug_assert!(ev.seq < st.total, "source seq {} out of reserved window", ev.seq);
            assert!(self.topo.is_host(ev.host), "node {} is not a host", ev.host);
            let sender = self.entities.dense(ev.host);
            let attach = self.topo.attachment(ev.host).expect("hosts are attached");
            let attach_sender = self.entities.dense(attach.sw);
            let packet = self.trace.arena_mut().intern(ev.packet);
            self.push_keyed(
                ev.time,
                pack_seq(ENV_ENTITY, st.base + ev.seq),
                EventKind::Inject { host: ev.host, packet, size: ev.size, sender, attach_sender },
            );
            admitted += 1;
        }
        self.source = Some(st);
        if self.metrics.on && admitted > 0 {
            self.metrics.pump_batch.observe(admitted);
        }
        if let Some(sw) = sw {
            let ns = sw.elapsed_ns();
            self.metrics.phase_pump_ns.observe(ns);
        }
    }

    /// Runs local events with fire time strictly below `horizon_us` — one
    /// conservative synchronization window.
    pub(crate) fn run_window(&mut self, horizon_us: u64) {
        while let Some(key) = self.queue.pop() {
            let (time, seq, slot) = key;
            if time.as_micros() >= horizon_us {
                self.queue.push(key);
                break;
            }
            let kind = self.slots[slot as usize].take().expect("queued slots are filled");
            self.free_slots.push(slot);
            self.now = time;
            self.dispatch((time, seq), kind);
        }
    }

    fn dispatch(&mut self, key: EventKey, kind: EventKind) {
        self.stats.events_processed += 1;
        let carried = match &kind {
            EventKind::Inject { packet, .. } | EventKind::Arrive { packet, .. } => Some(*packet),
            _ => None,
        };
        // One branch per dispatch when metrics are off; everything else
        // (including the flight recorder and the sampled wall-clock
        // timings) hides behind it.
        if self.metrics.on {
            self.metrics.begin_dispatch(self.stats.events_processed);
            self.metrics.dispatched[kind_index(&kind)] += 1;
            let depth = self.queue.len() as u64;
            self.metrics.queue_depth_hw = self.metrics.queue_depth_hw.max(depth + 1);
            if let Some(fr) = &self.metrics.flight {
                let (kind_name, node) = flight_info(&kind);
                fr.record(FlightEvent {
                    t_us: key.0.as_micros(),
                    seq: key.1,
                    kind: kind_name,
                    node,
                    depth,
                });
            }
        }
        let before = self.trace.len();
        if self.metrics.sampling {
            let sw = Stopwatch::start();
            self.dispatch_inner(key, kind);
            let ns = sw.elapsed_ns();
            self.metrics.phase_dispatch_ns.observe(ns);
        } else {
            self.dispatch_inner(key, kind);
        }
        if self.record_full {
            let n = self.trace.len() - before;
            if n > 0 {
                self.record_runs.push((key, n as u32));
            }
        }
        // Dispatch consumed the event: drop the queue's reference taken in
        // `push_keyed`, then reclaim this dispatch's unretained
        // intermediates (children pushed above hold their own references).
        // No-ops unless the arena recycles (stats-only runs).
        if let Some(id) = carried {
            let arena = self.trace.arena_mut();
            arena.release(id);
            arena.sweep();
        }
    }

    /// Appends a trace record, routing a cross-shard parent into the
    /// merge-time side list.
    fn push_record(&mut self, packet: PacketId, loc: Loc, parent: Parent) -> usize {
        let idx = self.trace.push_id(packet, loc, parent.local());
        if let Parent::Remote(s, i) = parent {
            if self.record_full {
                self.remote_parents.push((idx as u32, (s, i)));
            }
        }
        idx
    }

    fn push_drop(&mut self, key: EventKey, drop: Drop) {
        self.stats.dropped[drop.reason.index()] += 1;
        if self.stats_mode == StatsMode::Counters {
            return;
        }
        self.stats.drops.push(drop);
        if self.multi {
            self.drop_keys.push(key);
        }
    }

    fn dispatch_inner(&mut self, key: EventKey, kind: EventKind) {
        match kind {
            EventKind::Inject { host, packet, size, sender, attach_sender } => {
                let Some(attach) = self.topo.attachment(host) else { return };
                self.stats.injected += 1;
                let idx = self.trace.push_id(packet, Loc::new(host, 0), None);
                if let Some(o) = self.observer.as_deref_mut() {
                    o.record(idx, self.trace.arena().get(packet), Loc::new(host, 0), None);
                }
                // Host attachment links are uncontended.
                let arrival = self.now + self.topo.host_latency;
                let seq = self.next_seq(sender);
                self.schedule_local(
                    arrival,
                    seq,
                    EventKind::Arrive {
                        loc: attach,
                        packet,
                        size,
                        parent: Parent::Local(idx),
                        from_host: true,
                        sender: attach_sender,
                    },
                );
            }
            EventKind::Arrive { loc, packet, size, parent, from_host, sender } => {
                if self.topo.is_host(loc.sw) {
                    let idx = self.push_record(packet, loc, parent);
                    if let Some(o) = self.observer.as_deref_mut() {
                        o.record(idx, self.trace.arena().get(packet), loc, parent.local());
                        if let Parent::Local(p) = parent {
                            o.retire(p);
                        }
                        o.leaf(idx, edn_core::LeafKind::Delivered);
                    }
                    let pk = self.trace.arena().get(packet);
                    self.stats.delivered_packets += 1;
                    self.stats.delivered_bytes += size as u64;
                    if self.stats_mode == StatsMode::Full {
                        self.stats.deliveries.push(Delivery {
                            time: self.now,
                            host: loc.sw,
                            packet: pk.clone(),
                            size,
                        });
                        if self.multi {
                            self.delivery_keys.push(key);
                        }
                    }
                    let host = loc.sw;
                    let replies = self.hosts.on_receive(host, pk, self.now);
                    if !replies.is_empty() {
                        let attach =
                            self.topo.attachment(host).expect("delivered hosts are attached");
                        let attach_sender = self.entities.dense(attach.sw);
                        for (delay, reply, rsize) in replies {
                            let t = self.now + delay;
                            let reply = self.trace.arena_mut().intern(reply);
                            let seq = self.next_seq(sender);
                            self.schedule_local(
                                t,
                                seq,
                                EventKind::Inject {
                                    host,
                                    packet: reply,
                                    size: rsize,
                                    sender,
                                    attach_sender,
                                },
                            );
                        }
                    }
                    return;
                }
                self.switch_step(key, loc, packet, size, parent, from_host, sender);
            }
            EventKind::Notify { msg, cause } => {
                // Controller knowledge is cumulative: record the cause
                // before computing deliveries. Sharded runs log the
                // dispatch for the merge-time causality replay instead.
                // Plumbing messages (acks, retransmissions) carry the
                // NO_CAUSE sentinel and stay out of the causality record.
                if cause != NO_CAUSE {
                    if self.multi {
                        if self.record_full {
                            self.notify_log.push((key, cause));
                        }
                    } else {
                        self.ctrl_causes.push(cause.1 as usize);
                    }
                }
                for (delay, sw, out) in self.dataplane.on_notify(msg, self.now) {
                    self.send_deliver(sw, out, delay);
                }
                self.drain_plane();
            }
            EventKind::Deliver { sw, msg } => {
                // Everything the controller has heard up to now becomes a
                // causal ancestor of this switch's subsequent processing.
                // Pure acks are plumbing: they change no switch state, so
                // they must not strengthen the causal frontier.
                if !matches!(msg, CtrlMsg::Ack { .. }) {
                    if self.multi {
                        if self.record_full {
                            self.deliver_log.push((key, sw));
                            self.pending_deliver.insert(sw);
                        }
                    } else {
                        self.ctrl_delivered.insert(sw, self.ctrl_causes.len());
                    }
                }
                let replies = self.dataplane.deliver_and_reply(sw, msg, self.now);
                if !replies.is_empty() {
                    let sender = self.entities.dense(sw);
                    for reply in replies {
                        self.send_notify(sw, sender, reply, NO_CAUSE);
                    }
                }
                self.drain_plane();
            }
            EventKind::Timer { node } => {
                let step = self.dataplane.on_timer(node, self.now);
                if !step.notifications.is_empty() {
                    let sender = if node == CONTROLLER_NODE {
                        CTRL_ENTITY
                    } else {
                        self.entities.dense(node)
                    };
                    for msg in step.notifications {
                        self.send_notify(node, sender, msg, NO_CAUSE);
                    }
                }
                for (delay, sw, out) in step.deliveries {
                    self.send_deliver(sw, out, delay);
                }
                self.drain_plane();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn switch_step(
        &mut self,
        key: EventKey,
        loc: Loc,
        packet: PacketId,
        size: u32,
        parent: Parent,
        from_host: bool,
        sender: u32,
    ) {
        let ingress_idx = self.push_record(packet, loc, parent);
        if let Some(o) = self.observer.as_deref_mut() {
            let sw = self.metrics.sampling.then(Stopwatch::start);
            o.record(ingress_idx, self.trace.arena().get(packet), loc, parent.local());
            if let Parent::Local(p) = parent {
                o.retire(p);
            }
            if let Some(sw) = sw {
                self.metrics.phase_observer_ns.observe(sw.elapsed_ns());
            }
        }
        // Knowledge delivered by the controller happens-before this step.
        if self.multi {
            if self.record_full && self.pending_deliver.remove(&loc.sw) {
                self.link_markers.push((key, loc.sw, ingress_idx as u32));
            }
        } else {
            let delivered = self.ctrl_delivered.get(&loc.sw).copied().unwrap_or(0);
            let linked = self.ctrl_linked.entry(loc.sw).or_insert(0);
            for &cause in &self.ctrl_causes[*linked..delivered] {
                if cause < ingress_idx {
                    self.trace.add_causal_edge(cause, ingress_idx);
                    if let Some(o) = self.observer.as_deref_mut() {
                        o.edge(cause, ingress_idx);
                    }
                }
            }
            *linked = (*linked).max(delivered);
        }
        // The data plane sees either the interned id (arena path) or an
        // owned resolution of it (the reference path); both end in ids,
        // written into the engine's reused step buffer.
        let mut out = std::mem::take(&mut self.step_buf);
        let lookup_sw = self.metrics.sampling.then(Stopwatch::start);
        match self.packet_path {
            PacketPath::Arena => {
                self.dataplane.process_arena_into(
                    loc.sw,
                    loc.pt,
                    packet,
                    from_host,
                    self.now,
                    self.trace.arena_mut(),
                    &mut out,
                );
            }
            PacketPath::Owned => {
                let owned = self.trace.arena().get(packet).clone();
                let r = self.dataplane.process(loc.sw, loc.pt, owned, from_host, self.now);
                let arena = self.trace.arena_mut();
                out.clear();
                out.outputs.extend(r.outputs.into_iter().map(|(pt, pk)| (pt, arena.intern(pk))));
                out.notifications.extend(r.notifications);
            }
        }
        if let Some(sw) = lookup_sw {
            self.metrics.phase_lookup_ns.observe(sw.elapsed_ns());
        }
        if !out.notifications.is_empty() {
            if let Some(o) = self.observer.as_deref_mut() {
                o.cause(ingress_idx);
            }
        }
        let stepped_plane = !out.notifications.is_empty();
        for msg in out.notifications.drain(..) {
            // The controller lives on shard 0 (send_notify routes there).
            let cause = (self.me, ingress_idx as u32);
            self.send_notify(loc.sw, sender, msg, cause);
        }
        if stepped_plane {
            self.drain_plane();
        }
        if out.outputs.is_empty() {
            self.trace.mark_terminated(ingress_idx);
            if let Some(o) = self.observer.as_deref_mut() {
                o.leaf(ingress_idx, edn_core::LeafKind::Terminated);
            }
            self.push_drop(
                key,
                Drop {
                    time: self.now,
                    switch: loc.sw,
                    packet: self.trace.arena().get(packet).clone(),
                    reason: DropReason::NoRule,
                },
            );
            self.step_buf = out;
            return;
        }
        let depart = self.now + self.params.switch_delay;
        for i in 0..out.outputs.len() {
            let (out_pt, out_pkt) = out.outputs[i];
            let out_loc = Loc::new(loc.sw, out_pt);
            let egress_idx = self.push_record(out_pkt, out_loc, Parent::Local(ingress_idx));
            if let Some(o) = self.observer.as_deref_mut() {
                o.record(egress_idx, self.trace.arena().get(out_pkt), out_loc, Some(ingress_idx));
            }
            let (link_idx, dst_dense) = match self.egress.get(&out_loc) {
                // Host delivery?
                Some(&Egress::Host(host, host_dense)) => {
                    let t = depart + self.topo.host_latency;
                    let seq = self.next_seq(sender);
                    self.schedule_local(
                        t,
                        seq,
                        EventKind::Arrive {
                            loc: Loc::new(host, 0),
                            packet: out_pkt,
                            size,
                            parent: Parent::Local(egress_idx),
                            from_host: false,
                            sender: host_dense,
                        },
                    );
                    continue;
                }
                // Inter-switch link.
                Some(&Egress::Link(i, dense)) => (i as usize, dense),
                // Nothing attached here.
                None => {
                    self.trace.mark_terminated(egress_idx);
                    if let Some(o) = self.observer.as_deref_mut() {
                        o.leaf(egress_idx, edn_core::LeafKind::Terminated);
                    }
                    self.push_drop(
                        key,
                        Drop {
                            time: depart,
                            switch: loc.sw,
                            packet: self.trace.arena().get(out_pkt).clone(),
                            reason: DropReason::DeadEnd,
                        },
                    );
                    continue;
                }
            };
            let link = self.topo.links()[link_idx];
            // Scheduled failure? Like queue losses, failure drops are left
            // unterminated in the trace: the abstract configuration has no
            // notion of a dead link, so the packet reads as in flight.
            if timeline_at(&self.link_state[link_idx], depart, false) {
                if let Some(o) = self.observer.as_deref_mut() {
                    o.leaf(egress_idx, edn_core::LeafKind::Stalled);
                }
                self.push_drop(
                    key,
                    Drop {
                        time: depart,
                        switch: loc.sw,
                        packet: self.trace.arena().get(out_pkt).clone(),
                        reason: DropReason::LinkDown,
                    },
                );
                continue;
            }
            let arrival = match link.capacity {
                None => depart + link.latency,
                Some(bps) => {
                    let free = &mut self.link_free[link_idx];
                    let start = (*free).max(depart);
                    if self.metrics.on && *free > depart {
                        self.metrics.link_busy += 1;
                    }
                    // Tail drop when the backlog exceeds the queue bound.
                    // Queue losses are *not* marked terminated in the trace:
                    // the abstract configuration relation has lossless
                    // links, so a queue drop reads as a packet forever in
                    // flight (a prefix), not as forwarding misbehaviour.
                    if start.saturating_sub(depart) > self.params.max_queue_delay {
                        if let Some(o) = self.observer.as_deref_mut() {
                            o.leaf(egress_idx, edn_core::LeafKind::Stalled);
                        }
                        self.push_drop(
                            key,
                            Drop {
                                time: depart,
                                switch: loc.sw,
                                packet: self.trace.arena().get(out_pkt).clone(),
                                reason: DropReason::QueueFull,
                            },
                        );
                        continue;
                    }
                    let wire = size as u64 + self.params.header_overhead as u64;
                    let tx = SimTime::from_micros((wire * 1_000_000).div_ceil(bps));
                    *free = start + tx;
                    start + tx + link.latency
                }
            };
            let seq = self.next_seq(sender);
            let target = self.owner_of(link.dst.sw);
            if target == self.me {
                self.schedule_local(
                    arrival,
                    seq,
                    EventKind::Arrive {
                        loc: link.dst,
                        packet: out_pkt,
                        size,
                        parent: Parent::Local(egress_idx),
                        from_host: false,
                        sender: dst_dense,
                    },
                );
            } else {
                // Crossing a cut link: the packet itself travels (the
                // receiving shard re-interns it into its own arena).
                self.observe_remote(arrival);
                self.outbox[target as usize].push(Remote::Arrive {
                    time: arrival,
                    seq,
                    loc: link.dst,
                    packet: self.trace.arena().get(out_pkt).clone(),
                    size,
                    parent: (self.me, egress_idx as u32),
                    sender: dst_dense,
                });
            }
        }
        out.clear();
        self.step_buf = out;
        if let Some(o) = self.observer.as_deref_mut() {
            o.retire(ingress_idx);
        }
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// See the crate-level documentation for a complete run.
pub struct Engine<D: DataPlane> {
    pub(crate) cores: Vec<Core<D>>,
    entities: EntityMap,
    /// Creation counter of the environment entity (initial injections).
    env_seq: u64,
    /// Has `run` been called yet? Sharding is resolved at the first run.
    started: bool,
    /// Per-shard data-plane clones and host forks prepared by
    /// [`with_shards`](Engine::with_shards), consumed at the first run.
    prepared: Option<Vec<(D, BoxedHosts)>>,
    pub(crate) partition: Option<Partition>,
    lookahead: SimTime,
}

impl<D: DataPlane> Engine<D> {
    /// Creates an engine.
    ///
    /// The event-queue implementation, trace mode, and packet path default
    /// from the environment (`EDN_QUEUE`, `EDN_TRACE`, `EDN_PACKETS`); pin
    /// them with [`with_queue`](Engine::with_queue),
    /// [`with_trace_mode`](Engine::with_trace_mode), and
    /// [`with_packet_path`](Engine::with_packet_path). The engine starts
    /// single-threaded; see [`with_shards`](Engine::with_shards).
    pub fn new(topo: SimTopology, params: SimParams, dataplane: D, hosts: BoxedHosts) -> Engine<D> {
        let entities = EntityMap::build(&topo);
        let level = MetricsLevel::from_env();
        let flight = level.is_full().then(|| FlightRecorder::new(FLIGHT_CAPACITY));
        let core = Core::build(
            topo,
            params,
            dataplane,
            hosts,
            QueueKind::from_env(),
            TraceMode::from_env(),
            PacketPath::from_env(),
            StatsMode::from_env(),
            0,
            1,
            None,
            EngineMetrics::new(level, flight),
            ChannelModel::from_env(),
        );
        Engine {
            cores: vec![core],
            entities,
            env_seq: 0,
            started: false,
            prepared: None,
            partition: None,
            lookahead: SimTime::ZERO,
        }
    }

    /// Replaces the event-queue implementation, migrating any pending
    /// events (pop order is a total order on the key, so the carrier never
    /// affects a run).
    pub fn with_queue(mut self, kind: QueueKind) -> Engine<D> {
        for core in &mut self.cores {
            core.queue.change_kind(kind);
        }
        self
    }

    /// Sets the trace recording mode.
    ///
    /// # Panics
    ///
    /// Panics if any event has already been scheduled (the mode governs a
    /// whole run).
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Engine<D> {
        assert!(self.env_seq == 0, "set the trace mode before scheduling events");
        for core in &mut self.cores {
            core.trace = TraceBuilder::with_mode(mode);
            core.record_full = core.multi && mode == TraceMode::Full;
        }
        self
    }

    /// Sets the packet representation driven through the data plane.
    pub fn with_packet_path(mut self, path: PacketPath) -> Engine<D> {
        for core in &mut self.cores {
            core.packet_path = path;
        }
        self
    }

    /// Sets how much per-packet detail the run's [`Stats`] retain. The
    /// aggregate counters are identical in every mode;
    /// [`StatsMode::Counters`] just leaves the per-packet streams empty.
    ///
    /// # Panics
    ///
    /// Panics if any event has already been scheduled (the mode governs a
    /// whole run).
    pub fn with_stats_mode(mut self, mode: StatsMode) -> Engine<D> {
        assert!(self.env_seq == 0, "set the stats mode before scheduling events");
        for core in &mut self.cores {
            core.stats_mode = mode;
        }
        self
    }

    /// Sets the telemetry level, overriding the `EDN_METRICS` environment
    /// default — tests pin the level through this to stay immune to
    /// environment races. [`MetricsLevel::Full`] attaches a fresh flight
    /// recorder; lower levels detach any existing one.
    ///
    /// # Panics
    ///
    /// Panics if any event has already been scheduled (the level governs a
    /// whole run).
    pub fn with_metrics(mut self, level: MetricsLevel) -> Engine<D> {
        assert!(self.env_seq == 0, "set the metrics level before scheduling events");
        let flight = level.is_full().then(|| FlightRecorder::new(FLIGHT_CAPACITY));
        for core in &mut self.cores {
            core.metrics = EngineMetrics::new(level, flight.clone());
        }
        self
    }

    /// Sets the control-channel fault model, overriding the `EDN_CHANNEL`
    /// environment default (tests pin the model through this to stay
    /// immune to environment races).
    ///
    /// # Panics
    ///
    /// Panics if any event has already been scheduled (the channel
    /// governs a whole run).
    pub fn with_channel(mut self, model: ChannelModel) -> Engine<D> {
        assert!(self.env_seq == 0, "set the channel model before scheduling events");
        for core in &mut self.cores {
            core.channel = model;
        }
        self
    }

    /// The control-channel fault model this engine runs under.
    pub fn channel(&self) -> ChannelModel {
        self.cores[0].channel
    }

    /// The telemetry level this engine runs at.
    pub fn metrics_level(&self) -> MetricsLevel {
        self.cores[0].metrics.level()
    }

    /// The engine's flight recorder — a cloneable handle onto the shared
    /// ring of recent events, present only at [`MetricsLevel::Full`].
    /// Callers keep a clone to dump after a failed run.
    pub fn flight_recorder(&self) -> Option<FlightRecorder> {
        self.cores[0].metrics.flight.clone()
    }

    /// Requests a sharded run: the topology is partitioned into `k`
    /// shards ([`Partition`]), each with its own event queue, data-plane
    /// clone, arena, and trace recorder, executed on `k` threads under
    /// conservative lookahead synchronization. Results — `Stats` and
    /// traces — are **byte-identical** to the single-threaded engine (the
    /// plumbing-equivalence differential suite pins this).
    ///
    /// `k` is clamped to the switch count. The engine silently falls back
    /// to single-threaded execution when the host logic cannot be forked
    /// ([`HostLogic::fork`](crate::HostLogic::fork) returns `None`) or
    /// the partition admits no positive lookahead (a zero-latency cut
    /// link with a zero controller latency); results are identical either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started.
    pub fn with_shards(mut self, k: u32) -> Engine<D>
    where
        D: Clone + Send,
    {
        assert!(!self.started, "set the shard count before running");
        let max = self.cores[0].topo.switches().len().max(1) as u32;
        let k = k.clamp(1, max);
        self.prepared = None;
        if k <= 1 {
            return self;
        }
        let mut extras = Vec::with_capacity(k as usize - 1);
        for _ in 1..k {
            let Some(hosts) = self.cores[0].hosts.fork() else {
                return self; // unforkable hosts: stay single-threaded
            };
            extras.push((self.cores[0].dataplane.clone(), hosts));
        }
        self.prepared = Some(extras);
        self
    }

    /// The number of shards this engine will run with (after clamping;
    /// before the first run this is the requested count, which may still
    /// fall back to 1 if the partition admits no lookahead).
    pub fn shards(&self) -> u32 {
        if self.cores.len() > 1 {
            self.cores.len() as u32
        } else {
            self.prepared.as_ref().map_or(1, |e| e.len() as u32 + 1)
        }
    }

    /// The event-queue implementation in use.
    pub fn queue_kind(&self) -> QueueKind {
        self.cores[0].queue.kind()
    }

    /// The trace recording mode in use.
    pub fn trace_mode(&self) -> TraceMode {
        self.cores[0].trace.mode()
    }

    /// Diagnostic: packet slots in shard 0's arena. Append-only arenas
    /// (trace mode [`TraceMode::Full`]) count every distinct packet ever
    /// seen; recycling arenas ([`TraceMode::StatsOnly`]) count the
    /// high-water mark of simultaneously live packets — for a streaming
    /// run, a bound independent of how many events are processed.
    pub fn arena_slots(&self) -> usize {
        self.cores[0].trace.arena().len()
    }

    /// The stats retention mode in use.
    pub fn stats_mode(&self) -> StatsMode {
        self.cores[0].stats_mode
    }

    /// The packet representation in use.
    pub fn packet_path(&self) -> PacketPath {
        self.cores[0].packet_path
    }

    /// Writes one transition onto a directed link's up/down schedule,
    /// replicated across every core. A link the topology does not have is
    /// a no-op (no packet can ever traverse it).
    fn set_link_state_at(&mut self, time: SimTime, src: Loc, dst: Loc, down: bool) {
        let Some(i) = self.cores[0].topo.link_index(src, dst) else { return };
        for core in &mut self.cores {
            timeline_set(&mut core.link_state[i], time, down);
        }
    }

    /// Injects a failure: the directed link `src → dst` drops every packet
    /// offered to it at or after `time` — until a later
    /// [`restore_link_at`](Engine::restore_link_at) brings it back up.
    /// Transitions may be scheduled in any order; a second transition at
    /// the same instant overwrites the first (last-write-wins), so
    /// repeated fail/restore cycles (flaps) are always well-defined.
    pub fn fail_link_at(&mut self, time: SimTime, src: Loc, dst: Loc) {
        self.set_link_state_at(time, src, dst, true);
    }

    /// Schedules a recovery: the directed link `src → dst` carries packets
    /// again from `time` onward (until a later
    /// [`fail_link_at`](Engine::fail_link_at), if any).
    pub fn restore_link_at(&mut self, time: SimTime, src: Loc, dst: Loc) {
        self.set_link_state_at(time, src, dst, false);
    }

    /// Injects a bidirectional failure at `time`.
    pub fn fail_bilink_at(&mut self, time: SimTime, a: Loc, b: Loc) {
        self.fail_link_at(time, a, b);
        self.fail_link_at(time, b, a);
    }

    /// Schedules a bidirectional recovery at `time`.
    pub fn restore_bilink_at(&mut self, time: SimTime, a: Loc, b: Loc) {
        self.restore_link_at(time, a, b);
        self.restore_link_at(time, b, a);
    }

    /// Crashes a switch at `time`: every inter-switch link incident to
    /// `sw` (both directions) goes down, so the switch neither receives
    /// nor emits transit traffic. Host attachment links are untouched —
    /// packets a crashed switch's hosts inject drop at the first dead
    /// egress, exactly as a real dark switch would blackhole them.
    pub fn crash_switch_at(&mut self, time: SimTime, sw: u64) {
        self.set_incident_links_at(time, sw, true);
    }

    /// Recovers a crashed switch at `time`: every inter-switch link
    /// incident to `sw` comes back up.
    pub fn recover_switch_at(&mut self, time: SimTime, sw: u64) {
        self.set_incident_links_at(time, sw, false);
    }

    fn set_incident_links_at(&mut self, time: SimTime, sw: u64, down: bool) {
        let incident: Vec<usize> = self.cores[0]
            .topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.src.sw == sw || l.dst.sw == sw)
            .map(|(i, _)| i)
            .collect();
        for core in &mut self.cores {
            for &i in &incident {
                timeline_set(&mut core.link_state[i], time, down);
            }
        }
    }

    /// Schedules a controller-latency change: from `time` onward the
    /// switch↔controller latency is `latency` instead of
    /// [`SimParams::controller_latency`], until a later entry replaces it
    /// (schedule a spike as a raise followed by a restore). Lowering the
    /// latency *below* the configured baseline forces single-threaded
    /// execution — the sharded scheduler's lookahead windows are sized
    /// from the baseline (results are byte-identical either way).
    pub fn set_controller_latency_at(&mut self, time: SimTime, latency: SimTime) {
        for core in &mut self.cores {
            timeline_set(&mut core.ctrl_latency, time, latency);
        }
    }

    /// The current simulated time (the maximum over shards).
    pub fn now(&self) -> SimTime {
        self.cores.iter().map(|c| c.now).max().unwrap_or(SimTime::ZERO)
    }

    /// Schedules a host to inject a packet of the default size at `time`.
    pub fn inject_at(&mut self, time: SimTime, host: u64, packet: Packet) {
        self.inject_sized(time, host, packet, DEFAULT_PACKET_SIZE);
    }

    /// Schedules a host to inject a packet of `size` bytes at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not a host of the topology.
    pub fn inject_sized(&mut self, time: SimTime, host: u64, packet: Packet, size: u32) {
        assert!(self.cores[0].topo.is_host(host), "node {host} is not a host");
        let sender = self.entities.dense(host);
        let attach = self.cores[0].topo.attachment(host).expect("hosts are attached");
        let attach_sender = self.entities.dense(attach.sw);
        let idx = if self.cores.len() > 1 {
            self.partition.as_ref().and_then(|p| p.owner_of(host)).unwrap_or(0) as usize
        } else {
            0
        };
        let seq = pack_seq(ENV_ENTITY, self.env_seq);
        self.env_seq += 1;
        let core = &mut self.cores[idx];
        let packet = core.trace.arena_mut().intern(packet);
        core.push_keyed(time, seq, EventKind::Inject { host, packet, size, sender, attach_sender });
    }

    /// Pre-sizes the event slab and queue for `extra` upcoming events —
    /// call before streaming a bulk injection whose iterator cannot report
    /// its length (e.g. a `flat_map` over flows).
    pub fn reserve_events(&mut self, extra: usize) {
        let core = &mut self.cores[0];
        core.queue.reserve(extra);
        core.slots.reserve(extra.saturating_sub(core.free_slots.len()));
    }

    /// Schedules a whole batch of host injections `(time, host, packet,
    /// size)` in one queue fill: the slab and queue are pre-sized once
    /// (from the iterator's size hint — use
    /// [`reserve_events`](Engine::reserve_events) first when the hint is
    /// useless) and repeated packets intern to one arena slot, so bulk
    /// workload setup (thousands of datagrams) avoids per-call growth
    /// churn.
    ///
    /// # Panics
    ///
    /// Panics if any scheduled node is not a host of the topology.
    pub fn inject_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = (SimTime, u64, Packet, u32)>,
    {
        let batch = batch.into_iter();
        let (expected, _) = batch.size_hint();
        self.reserve_events(expected);
        for (time, host, packet, size) in batch {
            self.inject_sized(time, host, packet, size);
        }
    }

    /// Attaches a lazy injection stream: the engine pulls events from the
    /// source as simulated time advances, so a workload of millions of
    /// datagrams never materializes in the queue. The run is
    /// **byte-identical** to scheduling the same events through
    /// [`inject_batch`](Engine::inject_batch) (see [`crate::source`]).
    ///
    /// A source forces single-threaded execution: a pending
    /// [`with_shards`](Engine::with_shards) request falls back to solo at
    /// the first run (results are byte-identical at any shard count, so
    /// nothing observable changes).
    ///
    /// Injections scheduled *after* this call (e.g. trigger packets via
    /// [`inject_at`](Engine::inject_at)) sort after the entire stream at
    /// equal times, exactly as they would after a batch call.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started or a source is already set.
    pub fn set_source(&mut self, src: Box<dyn WorkloadSource + Send>) {
        assert!(!self.started, "attach the source before running");
        assert!(self.cores[0].source.is_none(), "an engine takes one source");
        let total = src.total_events();
        let base = self.env_seq;
        self.env_seq += total;
        self.cores[0].source = Some(SourceState { src, base, total });
    }

    /// Attaches a streaming trace observer (e.g. the online consistency
    /// checker, [`edn_core::OnlineChecker`]): every record, drop, delivery,
    /// and controller causal edge is reported as it happens, so a
    /// [`TraceMode::StatsOnly`] run can still be checked.
    ///
    /// An observer forces single-threaded execution, like
    /// [`set_source`](Engine::set_source) — results are byte-identical
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started.
    pub fn set_observer(&mut self, mut observer: Box<dyn edn_core::TraceObserver + Send>) {
        assert!(!self.started, "attach the observer before running");
        if let Some(fr) = self.cores[0].metrics.flight.clone() {
            observer.attach_flight_recorder(fr);
        }
        self.cores[0].observer = Some(observer);
    }

    /// Resolves a pending [`with_shards`](Engine::with_shards) request:
    /// partitions the topology, builds the extra cores, and redistributes
    /// the already-scheduled injections to their owning shards.
    fn ensure_sharded(&mut self) {
        if self.started {
            return;
        }
        if self.cores[0].source.is_some() || self.cores[0].observer.is_some() {
            // Streaming sources and observers are solo-only; the results
            // are byte-identical at any shard count, so fall back.
            self.prepared = None;
            return;
        }
        let baseline = self.cores[0].params.controller_latency;
        if self.cores[0].ctrl_latency.iter().any(|&(_, l)| l < baseline) {
            // Lookahead windows are sized from the baseline controller
            // latency: a scheduled drop below it could land a cross-shard
            // message inside the current window. Fall back to solo.
            self.prepared = None;
            return;
        }
        let Some(extras) = self.prepared.take() else { return };
        let requested = extras.len() as u32 + 1;
        let part = Partition::compute(&self.cores[0].topo, requested);
        let lookahead = part.lookahead(&self.cores[0].topo, &self.cores[0].params);
        let k = part.shard_count();
        if k <= 1 || lookahead == SimTime::ZERO {
            return; // no usable partition: stay single-threaded
        }
        self.lookahead = lookahead;
        let queue = self.cores[0].queue.kind();
        let mode = self.cores[0].trace.mode();
        let path = self.cores[0].packet_path;
        let stats_mode = self.cores[0].stats_mode;
        let link_state = self.cores[0].link_state.clone();
        let ctrl_latency = self.cores[0].ctrl_latency.clone();
        let level = self.cores[0].metrics.level();
        let flight = self.cores[0].metrics.flight.clone();
        for (i, (dataplane, hosts)) in extras.into_iter().take(k as usize - 1).enumerate() {
            let mut core = Core::build(
                self.cores[0].topo.clone(),
                self.cores[0].params,
                dataplane,
                hosts,
                queue,
                mode,
                path,
                stats_mode,
                i as u32 + 1,
                k,
                Some(part.clone()),
                EngineMetrics::new(level, flight.clone()),
                self.cores[0].channel,
            );
            core.link_state.clone_from(&link_state);
            core.ctrl_latency.clone_from(&ctrl_latency);
            self.cores.push(core);
        }
        {
            let core0 = &mut self.cores[0];
            core0.multi = true;
            core0.record_full = mode == TraceMode::Full;
            core0.owners = Some(part.clone());
            core0.outbox = vec![Vec::new(); k as usize];
        }
        // Redistribute the pending injections to their owning shards,
        // keeping their keys (and therefore the global order) intact.
        let mut moved = Vec::new();
        while let Some((time, seq, slot)) = self.cores[0].queue.pop() {
            let kind = self.cores[0].slots[slot as usize].take().expect("queued slots are filled");
            self.cores[0].free_slots.push(slot);
            moved.push((time, seq, kind));
        }
        for (time, seq, kind) in moved {
            let EventKind::Inject { host, packet, size, sender, attach_sender } = kind else {
                unreachable!("only injections are scheduled before a run")
            };
            let owner = part.owner_of(host).unwrap_or(0) as usize;
            let pk = self.cores[0].trace.arena().get(packet).clone();
            let core = &mut self.cores[owner];
            let local = core.trace.arena_mut().intern(pk);
            core.push_keyed(
                time,
                seq,
                EventKind::Inject { host, packet: local, size, sender, attach_sender },
            );
            // The event moved shards: drop shard 0's queue reference (the
            // owning shard's `push_keyed` above took its own).
            self.cores[0].trace.arena_mut().release(packet);
        }
        self.partition = Some(part);
    }

    /// Runs the event loop until the queue empties or `deadline` passes.
    ///
    /// This is the simulation proper — the phase scale measurements time.
    /// Turning the recorded run into a [`RunResult`] (which materializes
    /// the network trace from the arena) is the separate
    /// [`finish`](Engine::finish) step; [`run_until`](Engine::run_until)
    /// does both.
    pub fn run(&mut self, deadline: SimTime)
    where
        D: Send,
    {
        self.ensure_sharded();
        self.started = true;
        if self.cores.len() == 1 {
            self.cores[0].run_solo(deadline);
        } else {
            shard::run_multi(&mut self.cores, self.lookahead, deadline);
        }
    }

    /// Finalizes a run: resolves the recorded trace (empty under
    /// [`TraceMode::StatsOnly`]) and hands back statistics and the data
    /// plane. Sharded runs merge the per-shard records back into the
    /// exact single-threaded global order here.
    pub fn finish(mut self) -> RunResult<D> {
        let metrics_on = self.cores[0].metrics.on;
        let result = if self.cores.len() == 1 {
            let mut core = self.cores.pop().expect("engines have a core");
            let mut metrics = Registry::new();
            if metrics_on {
                core.metrics.contribute(&mut metrics);
                metrics::contribute_stats(&mut metrics, &core.stats);
                metrics::contribute_arena(&mut metrics, core.trace.arena());
                core.dataplane.contribute_metrics(&mut metrics);
            }
            if let Some(mut o) = core.observer.take() {
                // Packets still in flight (queued past the deadline) are
                // path tips: the observer closes them out as prefixes.
                o.finish();
                if metrics_on {
                    o.contribute_metrics(&mut metrics);
                }
            }
            RunResult {
                trace: core.trace.build().expect("engine-built traces are structurally valid"),
                stats: core.stats,
                dataplane: core.dataplane,
                metrics,
            }
        } else {
            let part = self.partition.as_ref().expect("sharded engines have a partition");
            shard::merge(self.cores, part)
        };
        if metrics_on {
            result.metrics.write_out_from_env();
        }
        result
    }

    /// Runs until the event queue empties or `deadline` passes, then returns
    /// the trace, statistics, and data plane.
    pub fn run_until(mut self, deadline: SimTime) -> RunResult<D>
    where
        D: Send,
    {
        self.run(deadline);
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{SinkHosts, StepResult};
    use netkat::Field;

    /// A trivial data plane: forward everything out port 1, notify on vlan=9.
    struct Fwd1;

    impl DataPlane for Fwd1 {
        fn process(&mut self, _: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            let mut r = StepResult::forward(1, packet.clone());
            if packet.get(Field::Vlan) == Some(9) {
                r.notifications.push(CtrlMsg::Events(1));
            }
            r
        }

        fn on_notify(&mut self, msg: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            vec![(SimTime::ZERO, 1, msg)]
        }

        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    fn topo() -> SimTopology {
        SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).host(200, Loc::new(2, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            None,
        )
    }

    /// A data plane delivering to the local host port.
    #[derive(Clone)]
    struct ToHostPort(u64);

    impl DataPlane for ToHostPort {
        fn process(&mut self, _: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            StepResult::forward(self.0, packet)
        }
        fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    #[derive(Clone)]
    struct PerSwitch;
    impl DataPlane for PerSwitch {
        fn process(&mut self, sw: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            StepResult::forward(if sw == 1 { 1 } else { 2 }, packet)
        }
        fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    #[test]
    fn packet_crosses_network_and_trace_records_hops() {
        // Switch 1 forwards out port 1 (to switch 2); switch 2 forwards out
        // port 2 (to host 200).
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        e.inject_at(SimTime::ZERO, 100, Packet::new().with(Field::IpDst, 200));
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1);
        assert_eq!(r.stats.deliveries[0].host, 200);
        // Trace: host, 1:2 in, 1:1 out, 2:1 in, 2:2 out, host 200.
        assert_eq!(r.trace.len(), 6);
        assert_eq!(r.trace.traces().len(), 1);
        assert_eq!(r.trace.packet(0).loc, Loc::new(100, 0));
        assert_eq!(r.trace.packet(5).loc, Loc::new(200, 0));
    }

    #[test]
    fn notifications_round_trip_through_controller() {
        let mut e = Engine::new(topo(), SimParams::default(), Fwd1, Box::new(SinkHosts));
        e.inject_at(SimTime::ZERO, 100, Packet::new().with(Field::Vlan, 9));
        let r = e.run_until(SimTime::from_secs(1));
        // The packet bounced between switches until the deadline is *not*
        // true: port 1 of switch 2 links back to switch 1... it loops.
        // What matters here: the run terminated (deadline bounded) and the
        // notification mechanics did not panic.
        assert!(r.stats.injected == 1);
    }

    #[test]
    fn dead_end_output_counts_as_drop() {
        let mut e = Engine::new(topo(), SimParams::default(), ToHostPort(7), Box::new(SinkHosts));
        e.inject_at(SimTime::ZERO, 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.drop_count(Some(DropReason::DeadEnd)), 1);
        assert!(r.stats.deliveries.is_empty());
    }

    #[test]
    fn capacity_limits_throughput_and_queue_drops() {
        // 1 Mbit/s ≈ 125_000 B/s; 1500 B packets take 12 ms each.
        let topo = SimTopology::new([1, 2])
            .host(100, Loc::new(1, 2))
            .host(200, Loc::new(2, 2))
            .bilink(Loc::new(1, 1), Loc::new(2, 1), SimTime::from_micros(50), Some(125_000));
        let mut e = Engine::new(topo, SimParams::default(), PerSwitch, Box::new(SinkHosts));
        // Offer 100 packets instantly; 50 ms of queue at 12 ms/packet ≈ 4-5
        // packets in flight; the rest tail-drop.
        for i in 0..100u64 {
            e.inject_at(SimTime::from_micros(i), 100, Packet::new().with(Field::Vlan, i));
        }
        let r = e.run_until(SimTime::from_secs(10));
        assert!(r.stats.drop_count(Some(DropReason::QueueFull)) > 80);
        let got = r.stats.deliveries.len();
        assert!((2..20).contains(&got), "expected a handful delivered, got {got}");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts));
            for i in 0..10 {
                e.inject_at(SimTime::from_millis(i), 100, Packet::new().with(Field::Vlan, i));
            }
            let r = e.run_until(SimTime::from_secs(1));
            (r.trace, r.stats)
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn run_can_resume_without_losing_the_deadline_crossing_event() {
        // `run` pops the first event past the deadline to notice it is
        // past the horizon; it must put it back so a later `run` call
        // still fires it.
        let split = |d1: u64| {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts));
            for i in 0..10 {
                e.inject_at(SimTime::from_millis(i), 100, Packet::new().with(Field::Vlan, i));
            }
            e.run(SimTime::from_millis(d1));
            e.run(SimTime::from_secs(1));
            let r = e.finish();
            (r.trace, r.stats)
        };
        let whole = split(1_000_000); // first run covers everything
        for d1 in [0, 3, 5] {
            assert_eq!(split(d1), whole, "resumed run diverged at split {d1}ms");
        }
    }

    #[test]
    fn inject_batch_equals_one_at_a_time() {
        let run = |batched: bool| {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts));
            let items: Vec<_> = (0..10u64)
                .map(|i| {
                    (SimTime::from_millis(i), 100u64, Packet::new().with(Field::Vlan, i), 64u32)
                })
                .collect();
            if batched {
                e.inject_batch(items);
            } else {
                for (t, h, pk, s) in items {
                    e.inject_sized(t, h, pk, s);
                }
            }
            let r = e.run_until(SimTime::from_secs(1));
            (r.trace, r.stats)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn engine_knobs_replay_identically() {
        // The same scenario on every {queue, trace mode, packet path}
        // combination: Stats must be identical everywhere, traces
        // identical in Full mode and empty in StatsOnly.
        let run = |queue: QueueKind, mode: TraceMode, path: PacketPath| {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts))
                    .with_queue(queue)
                    .with_trace_mode(mode)
                    .with_packet_path(path);
            assert_eq!(e.queue_kind(), queue);
            assert_eq!(e.trace_mode(), mode);
            assert_eq!(e.packet_path(), path);
            for i in 0..10 {
                e.inject_at(SimTime::from_millis(i), 100, Packet::new().with(Field::Vlan, i));
            }
            let r = e.run_until(SimTime::from_secs(1));
            (r.trace, r.stats)
        };
        let (reference_trace, reference_stats) =
            run(QueueKind::Heap, TraceMode::Full, PacketPath::Owned);
        assert!(!reference_trace.is_empty());
        for queue in [QueueKind::Heap, QueueKind::Calendar] {
            for mode in [TraceMode::Full, TraceMode::StatsOnly] {
                for path in [PacketPath::Owned, PacketPath::Arena] {
                    let (trace, stats) = run(queue, mode, path);
                    assert_eq!(stats, reference_stats, "{queue:?}/{mode:?}/{path:?}");
                    match mode {
                        TraceMode::Full => assert_eq!(trace, reference_trace),
                        TraceMode::StatsOnly => assert!(trace.is_empty()),
                    }
                }
            }
        }
    }

    #[test]
    fn stats_only_streaming_runs_in_bounded_arena_memory() {
        // A streamed run of N distinct datagrams: in StatsOnly mode the
        // recycling arena must stay at the in-flight high-water mark (a
        // bound independent of N), while observables match the Full run
        // exactly. The Full run interns append-only — its arena grows with
        // N, which is what makes the contrast meaningful.
        let flow = crate::traffic::UdpFlowSpec {
            flow: 1,
            src: 100,
            dst: 200,
            start: SimTime::from_millis(1),
            end: SimTime::from_millis(1) + SimTime::from_micros(100 * 2_000),
            interval: SimTime::from_micros(100),
            size: 64,
        };
        let run = |mode: TraceMode| {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts))
                    .with_trace_mode(mode)
                    .with_packet_path(PacketPath::Arena);
            e.set_source(Box::new(crate::traffic::FlowSource::new(std::slice::from_ref(&flow))));
            e.run(SimTime::from_secs(10));
            let slots = e.arena_slots();
            let r = e.finish();
            (slots, r.trace, r.stats)
        };
        let (full_slots, full_trace, full_stats) = run(TraceMode::Full);
        let (lean_slots, lean_trace, lean_stats) = run(TraceMode::StatsOnly);
        assert_eq!(lean_stats, full_stats);
        assert_eq!(full_stats.injected, 2_000);
        assert!(!full_trace.is_empty());
        assert!(lean_trace.is_empty());
        assert!(full_slots > 1_000, "the append-only arena should grow with N: {full_slots}");
        assert!(lean_slots < 64, "the recycling arena must stay bounded: {lean_slots}");
    }

    #[test]
    fn sharded_runs_match_solo_byte_for_byte() {
        // A two-switch topology partitioned across two shards: every
        // packet crosses the cut, and the results must not change.
        let run = |shards: u32, mode: TraceMode| {
            let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts))
                .with_trace_mode(mode)
                .with_shards(shards);
            for i in 0..20 {
                // Two same-time injections per millisecond from both ends:
                // cross-shard timestamp ties on every hop.
                e.inject_at(SimTime::from_millis(i), 100, Packet::new().with(Field::Vlan, i));
                e.inject_at(SimTime::from_millis(i), 200, Packet::new().with(Field::Vlan, i));
            }
            e.run(SimTime::from_secs(1));
            // The multi-threaded path must actually have engaged — a
            // silent fallback would make this test vacuous.
            assert_eq!(e.shards(), shards, "sharding did not engage");
            let r = e.finish();
            (r.trace, r.stats)
        };
        let (solo_trace, solo_stats) = run(1, TraceMode::Full);
        assert!(!solo_trace.is_empty());
        let (sharded_trace, sharded_stats) = run(2, TraceMode::Full);
        assert_eq!(sharded_stats, solo_stats);
        assert_eq!(sharded_trace, solo_trace);
        let (empty, stats_only) = run(2, TraceMode::StatsOnly);
        assert_eq!(stats_only, solo_stats);
        assert!(empty.is_empty());
    }

    #[test]
    fn sharded_run_can_resume_across_deadlines() {
        let split = |shards: u32, d1: u64| {
            let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts))
                .with_shards(shards);
            for i in 0..10 {
                e.inject_at(SimTime::from_millis(i), 100, Packet::new().with(Field::Vlan, i));
            }
            e.run(SimTime::from_millis(d1));
            e.run(SimTime::from_secs(1));
            let r = e.finish();
            (r.trace, r.stats)
        };
        let whole = split(1, 1_000_000);
        for d1 in [0, 3, 5] {
            assert_eq!(split(2, d1), whole, "sharded resume diverged at split {d1}ms");
        }
    }

    #[test]
    fn duplicate_switch_entries_do_not_break_entity_numbering() {
        // `SimTopology::new` accepts duplicate switch ids; the dense
        // entity numbering must dedup them or the per-entity counter
        // array comes up short and the first dispatch panics.
        let topo = SimTopology::new([1, 2, 2, 1])
            .host(100, Loc::new(1, 2))
            .host(200, Loc::new(2, 2))
            .bilink(Loc::new(1, 1), Loc::new(2, 1), SimTime::from_micros(50), None);
        let mut e = Engine::new(topo, SimParams::default(), PerSwitch, Box::new(SinkHosts));
        e.inject_at(SimTime::ZERO, 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1);
    }

    #[test]
    fn shard_count_clamps_and_reports() {
        let e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts))
            .with_shards(64);
        assert_eq!(e.shards(), 2, "clamped to the switch count");
        let e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        assert_eq!(e.shards(), 1);
    }

    #[test]
    fn unforkable_hosts_fall_back_to_solo() {
        struct Opaque;
        impl crate::HostLogic for Opaque {
            fn on_receive(
                &mut self,
                _: u64,
                _: &Packet,
                _: SimTime,
            ) -> Vec<(SimTime, Packet, u32)> {
                Vec::new()
            }
        }
        let mut e =
            Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(Opaque)).with_shards(2);
        assert_eq!(e.shards(), 1, "unforkable hosts must not shard");
        e.inject_at(SimTime::ZERO, 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1);
    }

    #[test]
    fn sharded_failure_injection_matches_solo() {
        let run = |shards: u32| {
            let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts))
                .with_shards(shards);
            e.fail_link_at(SimTime::from_millis(10), Loc::new(1, 1), Loc::new(2, 1));
            e.inject_at(SimTime::from_millis(1), 100, Packet::new()); // healthy
            e.inject_at(SimTime::from_millis(20), 100, Packet::new()); // dead
            let r = e.run_until(SimTime::from_secs(1));
            (r.trace, r.stats)
        };
        assert_eq!(run(2), run(1));
        let (_, stats) = run(2);
        assert_eq!(stats.deliveries.len(), 1);
        assert_eq!(stats.drop_count(Some(DropReason::LinkDown)), 1);
    }

    #[test]
    fn host_replies_are_injected() {
        struct Echo;
        impl crate::HostLogic for Echo {
            fn on_receive(
                &mut self,
                _: u64,
                packet: &Packet,
                _: SimTime,
            ) -> Vec<(SimTime, Packet, u32)> {
                if packet.get(Field::Vlan) == Some(1) {
                    // Reply once (vlan 2 so it doesn't echo forever).
                    vec![(SimTime::from_micros(100), packet.clone().with(Field::Vlan, 2), 64)]
                } else {
                    Vec::new()
                }
            }
        }
        // Switch 1 port 2 is host 100: deliver straight back out the
        // ingress port so host 100 echoes to itself.
        let mut e = Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(Echo));
        e.inject_at(SimTime::ZERO, 100, Packet::new().with(Field::Vlan, 1));
        let r = e.run_until(SimTime::from_secs(1));
        // Two deliveries to host 100: the original echoed, then the reply.
        assert_eq!(r.stats.deliveries.len(), 2);
        assert_eq!(r.stats.injected, 2);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::logic::{CtrlMsg, SinkHosts, StepResult};
    use crate::stats::DropReason;
    use crate::topology::SimTopology;
    use netkat::Field;

    #[derive(Clone)]
    struct PerSwitch;
    impl DataPlane for PerSwitch {
        fn process(&mut self, sw: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            StepResult::forward(if sw == 1 { 1 } else { 2 }, packet)
        }
        fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    fn topo() -> SimTopology {
        SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).host(200, Loc::new(2, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            None,
        )
    }

    #[test]
    fn failed_link_drops_only_after_its_time() {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        e.fail_link_at(SimTime::from_millis(10), Loc::new(1, 1), Loc::new(2, 1));
        e.inject_at(SimTime::from_millis(1), 100, Packet::new()); // healthy
        e.inject_at(SimTime::from_millis(20), 100, Packet::new()); // dead
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1);
        assert_eq!(r.stats.drop_count(Some(DropReason::LinkDown)), 1);
    }

    #[test]
    fn failure_is_direction_scoped() {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        // Fail only 2 -> 1; 1 -> 2 traffic is unaffected.
        e.fail_link_at(SimTime::ZERO, Loc::new(2, 1), Loc::new(1, 1));
        e.inject_at(SimTime::from_millis(1), 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1);
        assert_eq!(r.stats.drop_count(None), 0);
    }

    #[test]
    fn repeated_failures_accumulate_on_the_timeline() {
        // Two fail calls at different times both land on the schedule: the
        // link is down from the earlier onward (there is no restore in
        // between), regardless of call order.
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        e.fail_link_at(SimTime::from_millis(50), Loc::new(1, 1), Loc::new(2, 1));
        e.fail_link_at(SimTime::from_millis(5), Loc::new(1, 1), Loc::new(2, 1));
        e.inject_at(SimTime::from_millis(10), 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.drop_count(Some(DropReason::LinkDown)), 1);
    }

    #[test]
    fn flap_sequence_fail_restore_fail_is_well_defined() {
        // The satellite-1 flap: fail at 10ms, restore at 20ms, fail again
        // at 30ms. Packets probe each phase; only the down phases drop.
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        let (a, b) = (Loc::new(1, 1), Loc::new(2, 1));
        e.fail_link_at(SimTime::from_millis(10), a, b);
        e.restore_link_at(SimTime::from_millis(20), a, b);
        e.fail_link_at(SimTime::from_millis(30), a, b);
        for t in [5u64, 15, 25, 35] {
            e.inject_at(SimTime::from_millis(t), 100, Packet::new().with(Field::Vlan, t));
        }
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 2, "up phases (5ms, 25ms) deliver");
        assert_eq!(r.stats.drop_count(Some(DropReason::LinkDown)), 2, "down phases drop");
    }

    #[test]
    fn same_instant_transitions_are_last_write_wins() {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        let (a, b) = (Loc::new(1, 1), Loc::new(2, 1));
        e.fail_link_at(SimTime::from_millis(10), a, b);
        e.restore_link_at(SimTime::from_millis(10), a, b);
        e.inject_at(SimTime::from_millis(15), 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1, "the later restore overwrote the fail");
        assert_eq!(r.stats.drop_count(None), 0);
    }

    #[test]
    fn switch_crash_and_recover_gates_transit_traffic() {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        e.crash_switch_at(SimTime::from_millis(10), 2);
        e.recover_switch_at(SimTime::from_millis(20), 2);
        for t in [5u64, 15, 25] {
            e.inject_at(SimTime::from_millis(t), 100, Packet::new().with(Field::Vlan, t));
        }
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 2, "before the crash and after recovery");
        assert_eq!(r.stats.drop_count(Some(DropReason::LinkDown)), 1, "mid-crash drops");
    }

    #[test]
    fn flapped_run_is_byte_identical_across_shard_counts() {
        let run = |shards: u32| {
            let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts))
                .with_shards(shards);
            let (a, b) = (Loc::new(1, 1), Loc::new(2, 1));
            e.fail_link_at(SimTime::from_millis(10), a, b);
            e.restore_link_at(SimTime::from_millis(20), a, b);
            e.crash_switch_at(SimTime::from_millis(30), 2);
            e.recover_switch_at(SimTime::from_millis(40), 2);
            for t in (0..50u64).step_by(3) {
                e.inject_at(SimTime::from_millis(t), 100, Packet::new().with(Field::Vlan, t));
            }
            e.run(SimTime::from_secs(1));
            assert_eq!(e.shards(), shards, "sharding did not engage");
            let r = e.finish();
            (r.trace, r.stats)
        };
        let solo = run(1);
        assert!(!solo.1.deliveries.is_empty());
        assert!(solo.1.drop_count(Some(DropReason::LinkDown)) > 0);
        assert_eq!(run(2), solo);
    }

    #[test]
    fn controller_latency_spike_delays_notifications_deterministically() {
        // A gated plane: drops everything until the controller's enable
        // command lands, and the enable round-trip pays the controller
        // latency twice — so the scheduled spike directly moves how many
        // of the probe packets get through.
        #[derive(Clone)]
        struct Gate {
            enabled: bool,
        }
        impl DataPlane for Gate {
            fn process(
                &mut self,
                _: u64,
                _: u64,
                packet: Packet,
                from_host: bool,
                _: SimTime,
            ) -> StepResult {
                let mut r =
                    if self.enabled { StepResult::forward(2, packet) } else { StepResult::drop() };
                if from_host && !self.enabled {
                    r.notifications.push(CtrlMsg::Events(1));
                }
                r
            }
            fn on_notify(&mut self, msg: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
                vec![(SimTime::ZERO, 1, msg)]
            }
            fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {
                self.enabled = true;
            }
        }
        let run = |spike_ms: Option<u64>| {
            let mut e = Engine::new(
                topo(),
                SimParams::default(),
                Gate { enabled: false },
                Box::new(SinkHosts),
            );
            if let Some(ms) = spike_ms {
                e.set_controller_latency_at(SimTime::ZERO, SimTime::from_millis(ms));
            }
            for t in 0..30u64 {
                e.inject_at(
                    SimTime::from_millis(1 + 2 * t),
                    100,
                    Packet::new().with(Field::Vlan, t),
                );
            }
            let r = e.run_until(SimTime::from_secs(5));
            (r.trace, r.stats)
        };
        // Determinism: same spike, same bytes.
        assert_eq!(run(Some(20)), run(Some(20)));
        let (_, base) = run(None);
        let (_, spiked) = run(Some(20));
        assert!(
            spiked.deliveries.len() < base.deliveries.len(),
            "a 20ms controller latency must gate more probes than the 2ms baseline \
             ({} vs {})",
            spiked.deliveries.len(),
            base.deliveries.len()
        );
        assert!(!spiked.deliveries.is_empty(), "the gate still opens eventually");
    }
}

#[cfg(test)]
mod metrics_tests {
    use super::*;
    use crate::logic::{CtrlMsg, SinkHosts, StepResult};
    use edn_obs::MetricsLevel;

    #[derive(Clone)]
    struct PerSwitch;
    impl DataPlane for PerSwitch {
        fn process(&mut self, sw: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            StepResult::forward(if sw == 1 { 1 } else { 2 }, packet)
        }
        fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    fn topo() -> SimTopology {
        SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).host(200, Loc::new(2, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            None,
        )
    }

    fn run(level: MetricsLevel) -> RunResult<PerSwitch> {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts))
            .with_metrics(level);
        assert_eq!(e.metrics_level(), level);
        assert_eq!(e.flight_recorder().is_some(), level.is_full());
        e.inject_at(SimTime::from_millis(1), 100, Packet::new());
        e.run(SimTime::from_secs(1));
        e.finish()
    }

    #[test]
    fn off_level_leaves_the_registry_empty() {
        assert!(run(MetricsLevel::Off).metrics.is_empty());
    }

    #[test]
    fn counters_level_populates_sim_metrics_without_wall_phases() {
        let r = run(MetricsLevel::Counters);
        assert_eq!(r.metrics.counter("engine.dispatch.arrive"), Some(3));
        assert_eq!(r.metrics.counter("engine.delivered_packets"), Some(1));
        let lat = r.metrics.histogram("engine.event_latency_us").expect("latency hist");
        assert!(lat.count() > 0);
        assert!(r.metrics.histogram("phase.dispatch_ns").is_none());
    }

    #[test]
    fn full_level_records_flight_events_and_phases() {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts))
            .with_metrics(MetricsLevel::Full);
        let flight = e.flight_recorder().expect("full level attaches the recorder");
        e.inject_at(SimTime::from_millis(1), 100, Packet::new());
        e.run(SimTime::from_secs(1));
        let r = e.finish();
        assert!(!flight.is_empty(), "dispatches must land in the flight ring");
        assert!(flight.dump_json().contains("\"kind\""));
        // The first dispatch of a run is always sampled (index 0 & mask).
        assert!(r.metrics.histogram("phase.dispatch_ns").is_some());
    }
}

#[cfg(test)]
mod timeline_props {
    use super::*;
    use proptest::prelude::*;

    /// The reference semantics: replay the writes in order into a map
    /// keyed by time (later writes at the same time win), then take the
    /// greatest key at or before `t`.
    fn reference_at(writes: &[(u64, u32)], t: u64, default: u32) -> u32 {
        let mut map = std::collections::BTreeMap::new();
        for &(at, v) in writes {
            map.insert(at, v);
        }
        map.range(..=t).next_back().map(|(_, &v)| v).unwrap_or(default)
    }

    fn arb_writes() -> impl Strategy<Value = Vec<(u64, u32)>> {
        // A tiny time domain forces plenty of same-timestamp collisions.
        proptest::collection::vec((0u64..16, 0u32..1000), 0..40)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// `timeline_set` + `timeline_at` ≡ last-write-wins map semantics,
        /// including same-timestamp overwrites, the empty timeline, and
        /// queries strictly before the first entry.
        #[test]
        fn timeline_matches_last_write_wins_reference(
            writes in arb_writes(),
            query in 0u64..20,
            default in 0u32..1000,
        ) {
            let mut tl: Timeline<u32> = Vec::new();
            for &(at, v) in &writes {
                timeline_set(&mut tl, SimTime::from_micros(at), v);
            }
            // The timeline stays strictly sorted: overwrites never add entries.
            prop_assert!(tl.windows(2).all(|w| w[0].0 < w[1].0));
            let got = timeline_at(&tl, SimTime::from_micros(query), default);
            prop_assert_eq!(got, reference_at(&writes, query, default));
        }

        /// Rewriting the same instant any number of times keeps exactly
        /// one entry, holding the final value.
        #[test]
        fn same_instant_overwrites_in_place(values in proptest::collection::vec(0u32..1000, 1..20)) {
            let mut tl: Timeline<u32> = Vec::new();
            let t = SimTime::from_micros(7);
            for &v in &values {
                timeline_set(&mut tl, t, v);
            }
            prop_assert_eq!(tl.len(), 1);
            prop_assert_eq!(timeline_at(&tl, t, 9999), *values.last().unwrap());
            // Strictly before the entry, the default rules.
            prop_assert_eq!(timeline_at(&tl, SimTime::from_micros(6), 9999), 9999);
        }
    }

    #[test]
    fn empty_timeline_always_defaults() {
        let tl: Timeline<u32> = Vec::new();
        assert_eq!(timeline_at(&tl, SimTime::ZERO, 42), 42);
        assert_eq!(timeline_at(&tl, SimTime::from_secs(1), 42), 42);
    }
}

#[cfg(test)]
mod channel_tests {
    use super::*;
    use crate::logic::{SinkHosts, StepResult, TimerStep};
    use netkat::Field;

    /// A plane that notifies the controller on every hop at switch 1 and
    /// counts what the controller hears — loss shows up as missing ids.
    #[derive(Clone, Default)]
    struct Chatty {
        heard: u64,
        sent: u64,
    }

    impl DataPlane for Chatty {
        fn process(&mut self, sw: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            let mut r = StepResult::forward(if sw == 1 { 1 } else { 2 }, packet);
            if sw == 1 {
                r.notifications.push(CtrlMsg::Events(self.sent));
                self.sent += 1;
            }
            r
        }
        fn on_notify(&mut self, msg: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            if let CtrlMsg::Events(_) = msg {
                self.heard += 1;
            }
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    fn topo() -> SimTopology {
        SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).host(200, Loc::new(2, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            None,
        )
    }

    fn run_chatty(model: ChannelModel, n: u64) -> (RunResult<Chatty>, Stats) {
        let mut e =
            Engine::new(topo(), SimParams::default(), Chatty::default(), Box::new(SinkHosts))
                .with_channel(model)
                .with_metrics(MetricsLevel::Counters);
        for i in 0..n {
            e.inject_at(SimTime::from_micros(10 * i), 100, Packet::new().with(Field::Vlan, i));
        }
        e.run(SimTime::from_secs(1));
        let r = e.finish();
        let stats = r.stats.clone();
        (r, stats)
    }

    #[test]
    fn explicit_ideal_channel_is_byte_identical_to_default() {
        let (a, sa) = run_chatty(ChannelModel::ideal(), 40);
        let mut e =
            Engine::new(topo(), SimParams::default(), Chatty::default(), Box::new(SinkHosts))
                .with_metrics(MetricsLevel::Counters);
        assert!(e.channel().is_ideal());
        for i in 0..40 {
            e.inject_at(SimTime::from_micros(10 * i), 100, Packet::new().with(Field::Vlan, i));
        }
        e.run(SimTime::from_secs(1));
        let b = e.finish();
        assert_eq!(sa, b.stats);
        assert_eq!(a.dataplane.heard, 40, "ideal channel loses nothing");
        assert_eq!(a.metrics.counter("channel.dropped"), Some(0));
    }

    #[test]
    fn lossy_channel_is_deterministic_and_actually_drops() {
        let model = ChannelModel::lossy(7).with_seed(7);
        let (a, sa) = run_chatty(model, 200);
        let (b, sb) = run_chatty(model, 200);
        assert_eq!(sa, sb, "same model, same run, byte for byte");
        assert_eq!(a.dataplane.heard, b.dataplane.heard);
        let dropped = a.metrics.counter("channel.dropped").unwrap_or(0);
        let dups = a.metrics.counter("channel.duplicated").unwrap_or(0);
        assert!(dropped > 0, "200 notifies through a 6% channel must lose some");
        assert_eq!(a.dataplane.heard, 200 - dropped + dups, "every surviving copy is heard");
        // The data plane itself is untouched by control-channel faults.
        assert_eq!(sa.delivered_packets, 200);
    }

    /// A plane that requests a timer from `deliver_and_reply` and replies
    /// with an ack — exercising the Timer event kind, the reply path, and
    /// `drain_timers` end to end.
    #[derive(Clone, Default)]
    struct TimerPlane {
        fired: Vec<(u64, u64)>,
        armed: bool,
        acks_heard: u64,
    }

    impl DataPlane for TimerPlane {
        fn process(&mut self, sw: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            let mut r = StepResult::forward(if sw == 1 { 1 } else { 2 }, packet);
            if sw == 1 {
                r.notifications.push(CtrlMsg::Events(1));
            }
            r
        }
        fn on_notify(&mut self, msg: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            match msg {
                CtrlMsg::Events(_) => vec![(SimTime::ZERO, 1, CtrlMsg::SetConfig(5))],
                CtrlMsg::Ack { .. } => {
                    self.acks_heard += 1;
                    Vec::new()
                }
                _ => Vec::new(),
            }
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
        fn deliver_and_reply(&mut self, sw: u64, _: CtrlMsg, _: SimTime) -> Vec<CtrlMsg> {
            self.armed = true;
            vec![CtrlMsg::Ack { sw, ack: 1 }]
        }
        fn drain_timers(&mut self) -> Vec<(SimTime, u64)> {
            if self.armed {
                self.armed = false;
                vec![(SimTime::from_millis(50), 1)]
            } else {
                Vec::new()
            }
        }
        fn on_timer(&mut self, node: u64, now: SimTime) -> TimerStep {
            self.fired.push((node, now.as_micros()));
            TimerStep::default()
        }
    }

    #[test]
    fn timer_requests_fire_and_replies_reach_the_controller() {
        let mut e =
            Engine::new(topo(), SimParams::default(), TimerPlane::default(), Box::new(SinkHosts))
                .with_metrics(MetricsLevel::Counters);
        e.inject_at(SimTime::from_millis(1), 100, Packet::new());
        e.run(SimTime::from_secs(1));
        let r = e.finish();
        assert_eq!(r.dataplane.fired, vec![(1, 50_000)], "timer fires at its requested time");
        assert_eq!(r.dataplane.acks_heard, 1, "the deliver reply travels back as a notify");
        assert_eq!(r.metrics.counter("engine.dispatch.timer"), Some(1));
    }
}
