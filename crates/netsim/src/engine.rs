//! The discrete-event simulation engine.
//!
//! A single-threaded, fully deterministic event loop: events fire in
//! `(time, insertion sequence)` order, so identical inputs give identical
//! runs. The engine implements the *mechanics* of Fig. 7 — queues, links,
//! host injection, controller message transport — and delegates all
//! *behaviour* (forwarding, tagging, state) to a [`DataPlane`].
//!
//! Every processing step is recorded into an `edn-core`
//! [`TraceBuilder`], so a finished run yields the network trace needed by
//! the correctness checker.

use std::collections::HashMap;

use edn_core::{NetworkTrace, TraceBuilder, TraceMode};
use netkat::{Loc, Packet, PacketId};

use crate::logic::{CtrlMsg, DataPlane, HostLogic, PacketPath, StepResultId};
use crate::queue::{EventQueue, QueueKind};
use crate::stats::{Delivery, Drop, DropReason, Stats};
use crate::time::SimTime;
use crate::topology::{SimParams, SimTopology};

/// Default payload size for injected packets (an Ethernet-ish frame).
pub const DEFAULT_PACKET_SIZE: u32 = 1_500;

/// Pending events carry [`PacketId`]s into the run's shared arena, never
/// owned packets: forking an event (multicast) or recording it into the
/// trace copies four bytes.
#[derive(Clone, Debug)]
enum EventKind {
    /// A host pushes a packet onto its attachment link.
    Inject { host: u64, packet: PacketId, size: u32 },
    /// A packet arrives at a location (switch ingress or host).
    Arrive { loc: Loc, packet: PacketId, size: u32, parent: Option<usize>, from_host: bool },
    /// A switch-to-controller message arrives at the controller; `cause` is
    /// the trace index of the packet processing step that produced it.
    Notify { msg: CtrlMsg, cause: usize },
    /// A controller command arrives at a switch.
    Deliver { sw: u64, msg: CtrlMsg },
}

/// What sits on the far side of an egress location — resolved once at
/// construction, so the per-hop path pays **one** map probe instead of the
/// former host-map probe plus link-map probe.
#[derive(Clone, Copy, Debug)]
enum Egress {
    /// A host is attached here.
    Host(u64),
    /// An inter-switch link (index into `topo.links()`) starts here.
    Link(u32),
}

/// The egress map probes once per output; [`Loc`]'s derived `Hash` feeds
/// two `u64` writes straight through [`netkat::FxHasher`], skipping
/// SipHash's per-byte setup.
type EgressMap = HashMap<Loc, Egress, netkat::FxBuildHasher>;

/// The result of a finished run.
#[derive(Debug)]
pub struct RunResult<D> {
    /// The recorded network trace (Section 2 structure).
    pub trace: NetworkTrace,
    /// Deliveries, drops, and counters.
    pub stats: Stats,
    /// The data plane, with whatever internal state it accumulated.
    pub dataplane: D,
}

/// The discrete-event simulator.
///
/// # Examples
///
/// See the crate-level documentation for a complete run.
pub struct Engine<D: DataPlane> {
    topo: SimTopology,
    params: SimParams,
    dataplane: D,
    hosts: Box<dyn HostLogic>,
    queue: EventQueue,
    /// Slab of pending event payloads, indexed by the keys in `queue`.
    slots: Vec<Option<EventKind>>,
    /// Recycled slab slots.
    free_slots: Vec<u32>,
    seq: u64,
    now: SimTime,
    /// The run's trace recorder; it owns the [`PacketArena`] every
    /// in-flight packet of this run is interned in.
    trace: TraceBuilder,
    /// Which packet representation the data plane is driven through.
    packet_path: PacketPath,
    stats: Stats,
    /// What each egress location leads to (host or link), resolved once at
    /// construction (the topology is immutable), so the hot path never
    /// scans the link list or probes two maps.
    egress: EgressMap,
    /// Per-link transmission backlog, indexed like `topo.links()`: when the
    /// link is next free.
    link_free: Vec<SimTime>,
    /// Trace indices whose processing sent something to the controller.
    /// Controller knowledge is cumulative, so a controller→switch delivery
    /// causally descends from all of them.
    ctrl_causes: Vec<usize>,
    /// Per switch: how many of `ctrl_causes` have been delivered to it
    /// (pending happens-before linkage at its next processing step).
    ctrl_delivered: HashMap<u64, usize>,
    /// Per switch: how many of `ctrl_causes` are already linked.
    ctrl_linked: HashMap<u64, usize>,
    /// Injected failures, indexed like `topo.links()`: the instant from
    /// which the link drops everything (`None` = healthy forever).
    fail_at: Vec<Option<SimTime>>,
}

impl<D: DataPlane> Engine<D> {
    /// Creates an engine.
    ///
    /// The event-queue implementation, trace mode, and packet path default
    /// from the environment (`EDN_QUEUE`, `EDN_TRACE`, `EDN_PACKETS`); pin
    /// them with [`with_queue`](Engine::with_queue),
    /// [`with_trace_mode`](Engine::with_trace_mode), and
    /// [`with_packet_path`](Engine::with_packet_path).
    pub fn new(
        topo: SimTopology,
        params: SimParams,
        dataplane: D,
        hosts: Box<dyn HostLogic>,
    ) -> Engine<D> {
        // Dense per-link state, resolved once: the topology never changes
        // after construction, so packet forwarding can index links instead
        // of hashing `(Loc, Loc)` tuples or scanning the link list. Hosts
        // are inserted after links so a host attachment shadows a link
        // sharing its switch-side location (matching the old probe order:
        // host first).
        let mut egress = EgressMap::default();
        for (i, l) in topo.links().iter().enumerate() {
            egress.insert(l.src, Egress::Link(i as u32));
        }
        for (h, loc) in topo.hosts() {
            egress.insert(loc, Egress::Host(h));
        }
        let n_links = topo.links().len();
        Engine {
            topo,
            params,
            dataplane,
            hosts,
            queue: EventQueue::new(QueueKind::from_env()),
            slots: Vec::new(),
            free_slots: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            trace: TraceBuilder::with_mode(TraceMode::from_env()),
            packet_path: PacketPath::from_env(),
            stats: Stats::default(),
            egress,
            link_free: vec![SimTime::ZERO; n_links],
            ctrl_causes: Vec::new(),
            ctrl_delivered: HashMap::new(),
            ctrl_linked: HashMap::new(),
            fail_at: vec![None; n_links],
        }
    }

    /// Replaces the event-queue implementation, migrating any pending
    /// events (pop order is a total order on the key, so the carrier never
    /// affects a run).
    pub fn with_queue(mut self, kind: QueueKind) -> Engine<D> {
        self.queue.change_kind(kind);
        self
    }

    /// Sets the trace recording mode.
    ///
    /// # Panics
    ///
    /// Panics if any event has already been scheduled (the mode governs a
    /// whole run).
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Engine<D> {
        assert!(self.seq == 0, "set the trace mode before scheduling events");
        self.trace = TraceBuilder::with_mode(mode);
        self
    }

    /// Sets the packet representation driven through the data plane.
    pub fn with_packet_path(mut self, path: PacketPath) -> Engine<D> {
        self.packet_path = path;
        self
    }

    /// The event-queue implementation in use.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// The trace recording mode in use.
    pub fn trace_mode(&self) -> TraceMode {
        self.trace.mode()
    }

    /// The packet representation in use.
    pub fn packet_path(&self) -> PacketPath {
        self.packet_path
    }

    /// Injects a failure: the directed link `src → dst` drops every packet
    /// offered to it at or after `time` (failure injection for recovery
    /// scenarios and robustness tests). Failing a link the topology does not
    /// have is a no-op (no packet can ever traverse it).
    pub fn fail_link_at(&mut self, time: SimTime, src: Loc, dst: Loc) {
        let Some(i) = self.topo.link_index(src, dst) else { return };
        let at = self.fail_at[i].get_or_insert(time);
        *at = (*at).min(time);
    }

    /// Injects a bidirectional failure at `time`.
    pub fn fail_bilink_at(&mut self, time: SimTime, a: Loc, b: Loc) {
        self.fail_link_at(time, a, b);
        self.fail_link_at(time, b, a);
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a host to inject a packet of the default size at `time`.
    pub fn inject_at(&mut self, time: SimTime, host: u64, packet: Packet) {
        self.inject_sized(time, host, packet, DEFAULT_PACKET_SIZE);
    }

    /// Schedules a host to inject a packet of `size` bytes at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not a host of the topology.
    pub fn inject_sized(&mut self, time: SimTime, host: u64, packet: Packet, size: u32) {
        assert!(self.topo.is_host(host), "node {host} is not a host");
        let packet = self.trace.arena_mut().intern(packet);
        self.push(time, EventKind::Inject { host, packet, size });
    }

    /// Pre-sizes the event slab and queue for `extra` upcoming events —
    /// call before streaming a bulk injection whose iterator cannot report
    /// its length (e.g. a `flat_map` over flows).
    pub fn reserve_events(&mut self, extra: usize) {
        self.queue.reserve(extra);
        self.slots.reserve(extra.saturating_sub(self.free_slots.len()));
    }

    /// Schedules a whole batch of host injections `(time, host, packet,
    /// size)` in one queue fill: the slab and queue are pre-sized once
    /// (from the iterator's size hint — use
    /// [`reserve_events`](Engine::reserve_events) first when the hint is
    /// useless) and repeated packets intern to one arena slot, so bulk
    /// workload setup (thousands of datagrams) avoids per-call growth
    /// churn.
    ///
    /// # Panics
    ///
    /// Panics if any scheduled node is not a host of the topology.
    pub fn inject_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = (SimTime, u64, Packet, u32)>,
    {
        let batch = batch.into_iter();
        let (expected, _) = batch.size_hint();
        self.reserve_events(expected);
        for (time, host, packet, size) in batch {
            self.inject_sized(time, host, packet, size);
        }
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                self.slots.push(Some(kind));
                (self.slots.len() - 1) as u32
            }
        };
        self.queue.push((time, seq, slot));
    }

    /// Runs the event loop until the queue empties or `deadline` passes.
    ///
    /// This is the simulation proper — the phase scale measurements time.
    /// Turning the recorded run into a [`RunResult`] (which materializes
    /// the network trace from the arena) is the separate
    /// [`finish`](Engine::finish) step; [`run_until`](Engine::run_until)
    /// does both.
    pub fn run(&mut self, deadline: SimTime) {
        while let Some(key) = self.queue.pop() {
            let (time, _, slot) = key;
            if time > deadline {
                // Past the horizon: keep the event pending (same key, so
                // the order is unchanged) for a later `run` call.
                self.queue.push(key);
                break;
            }
            let kind = self.slots[slot as usize].take().expect("queued slots are filled");
            self.free_slots.push(slot);
            self.now = time;
            self.dispatch(kind);
        }
    }

    /// Finalizes a run: resolves the recorded trace (empty under
    /// [`TraceMode::StatsOnly`]) and hands back statistics and the data
    /// plane.
    pub fn finish(self) -> RunResult<D> {
        RunResult {
            trace: self.trace.build().expect("engine-built traces are structurally valid"),
            stats: self.stats,
            dataplane: self.dataplane,
        }
    }

    /// Runs until the event queue empties or `deadline` passes, then returns
    /// the trace, statistics, and data plane.
    pub fn run_until(mut self, deadline: SimTime) -> RunResult<D> {
        self.run(deadline);
        self.finish()
    }

    fn dispatch(&mut self, kind: EventKind) {
        self.stats.events_processed += 1;
        match kind {
            EventKind::Inject { host, packet, size } => {
                let Some(attach) = self.topo.attachment(host) else { return };
                self.stats.injected += 1;
                let idx = self.trace.push_id(packet, Loc::new(host, 0), None);
                // Host attachment links are uncontended.
                let arrival = self.now + self.topo.host_latency;
                self.push(
                    arrival,
                    EventKind::Arrive {
                        loc: attach,
                        packet,
                        size,
                        parent: Some(idx),
                        from_host: true,
                    },
                );
            }
            EventKind::Arrive { loc, packet, size, parent, from_host } => {
                if self.topo.is_host(loc.sw) {
                    self.trace.push_id(packet, loc, parent);
                    let pk = self.trace.arena().get(packet);
                    self.stats.deliveries.push(Delivery {
                        time: self.now,
                        host: loc.sw,
                        packet: pk.clone(),
                        size,
                    });
                    let host = loc.sw;
                    let replies = self.hosts.on_receive(host, pk, self.now);
                    for (delay, reply, rsize) in replies {
                        let t = self.now + delay;
                        let reply = self.trace.arena_mut().intern(reply);
                        self.push(t, EventKind::Inject { host, packet: reply, size: rsize });
                    }
                    return;
                }
                self.switch_step(loc, packet, size, parent, from_host);
            }
            EventKind::Notify { msg, cause } => {
                // Controller knowledge is cumulative: record the cause
                // before computing deliveries.
                self.ctrl_causes.push(cause);
                for (delay, sw, out) in self.dataplane.on_notify(msg, self.now) {
                    let t = self.now + self.params.controller_latency + delay;
                    self.push(t, EventKind::Deliver { sw, msg: out });
                }
            }
            EventKind::Deliver { sw, msg } => {
                // Everything the controller has heard up to now becomes a
                // causal ancestor of this switch's subsequent processing.
                self.ctrl_delivered.insert(sw, self.ctrl_causes.len());
                self.dataplane.deliver(sw, msg, self.now);
            }
        }
    }

    fn switch_step(
        &mut self,
        loc: Loc,
        packet: PacketId,
        size: u32,
        parent: Option<usize>,
        from_host: bool,
    ) {
        let ingress_idx = self.trace.push_id(packet, loc, parent);
        // Knowledge delivered by the controller happens-before this step.
        let delivered = self.ctrl_delivered.get(&loc.sw).copied().unwrap_or(0);
        let linked = self.ctrl_linked.entry(loc.sw).or_insert(0);
        for &cause in &self.ctrl_causes[*linked..delivered] {
            if cause < ingress_idx {
                self.trace.add_causal_edge(cause, ingress_idx);
            }
        }
        *linked = (*linked).max(delivered);
        // The data plane sees either the interned id (arena path) or an
        // owned resolution of it (the reference path); both end in ids.
        let result: StepResultId = match self.packet_path {
            PacketPath::Arena => self.dataplane.process_arena(
                loc.sw,
                loc.pt,
                packet,
                from_host,
                self.now,
                self.trace.arena_mut(),
            ),
            PacketPath::Owned => {
                let owned = self.trace.arena().get(packet).clone();
                let r = self.dataplane.process(loc.sw, loc.pt, owned, from_host, self.now);
                let arena = self.trace.arena_mut();
                StepResultId {
                    outputs: r.outputs.into_iter().map(|(pt, pk)| (pt, arena.intern(pk))).collect(),
                    notifications: r.notifications,
                }
            }
        };
        for msg in result.notifications {
            self.push(
                self.now + self.params.controller_latency,
                EventKind::Notify { msg, cause: ingress_idx },
            );
        }
        if result.outputs.is_empty() {
            self.trace.mark_terminated(ingress_idx);
            self.stats.drops.push(Drop {
                time: self.now,
                switch: loc.sw,
                packet: self.trace.arena().get(packet).clone(),
                reason: DropReason::NoRule,
            });
            return;
        }
        let depart = self.now + self.params.switch_delay;
        for (out_pt, out_pkt) in result.outputs {
            let out_loc = Loc::new(loc.sw, out_pt);
            let egress_idx = self.trace.push_id(out_pkt, out_loc, Some(ingress_idx));
            let link_idx = match self.egress.get(&out_loc) {
                // Host delivery?
                Some(&Egress::Host(host)) => {
                    let t = depart + self.topo.host_latency;
                    self.push(
                        t,
                        EventKind::Arrive {
                            loc: Loc::new(host, 0),
                            packet: out_pkt,
                            size,
                            parent: Some(egress_idx),
                            from_host: false,
                        },
                    );
                    continue;
                }
                // Inter-switch link.
                Some(&Egress::Link(i)) => i as usize,
                // Nothing attached here.
                None => {
                    self.trace.mark_terminated(egress_idx);
                    self.stats.drops.push(Drop {
                        time: depart,
                        switch: loc.sw,
                        packet: self.trace.arena().get(out_pkt).clone(),
                        reason: DropReason::DeadEnd,
                    });
                    continue;
                }
            };
            let link = self.topo.links()[link_idx];
            // Injected failure? Like queue losses, failure drops are left
            // unterminated in the trace: the abstract configuration has no
            // notion of a dead link, so the packet reads as in flight.
            if self.fail_at[link_idx].is_some_and(|t| depart >= t) {
                self.stats.drops.push(Drop {
                    time: depart,
                    switch: loc.sw,
                    packet: self.trace.arena().get(out_pkt).clone(),
                    reason: DropReason::LinkDown,
                });
                continue;
            }
            let arrival = match link.capacity {
                None => depart + link.latency,
                Some(bps) => {
                    let free = &mut self.link_free[link_idx];
                    let start = (*free).max(depart);
                    // Tail drop when the backlog exceeds the queue bound.
                    // Queue losses are *not* marked terminated in the trace:
                    // the abstract configuration relation has lossless
                    // links, so a queue drop reads as a packet forever in
                    // flight (a prefix), not as forwarding misbehaviour.
                    if start.saturating_sub(depart) > self.params.max_queue_delay {
                        self.stats.drops.push(Drop {
                            time: depart,
                            switch: loc.sw,
                            packet: self.trace.arena().get(out_pkt).clone(),
                            reason: DropReason::QueueFull,
                        });
                        continue;
                    }
                    let wire = size as u64 + self.params.header_overhead as u64;
                    let tx = SimTime::from_micros((wire * 1_000_000).div_ceil(bps));
                    *free = start + tx;
                    start + tx + link.latency
                }
            };
            self.push(
                arrival,
                EventKind::Arrive {
                    loc: link.dst,
                    packet: out_pkt,
                    size,
                    parent: Some(egress_idx),
                    from_host: false,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{SinkHosts, StepResult};
    use netkat::Field;

    /// A trivial data plane: forward everything out port 1, notify on vlan=9.
    struct Fwd1;

    impl DataPlane for Fwd1 {
        fn process(&mut self, _: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            let mut r = StepResult::forward(1, packet.clone());
            if packet.get(Field::Vlan) == Some(9) {
                r.notifications.push(CtrlMsg::Events(1));
            }
            r
        }

        fn on_notify(&mut self, msg: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            vec![(SimTime::ZERO, 1, msg)]
        }

        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    fn topo() -> SimTopology {
        SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).host(200, Loc::new(2, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            None,
        )
    }

    /// A data plane delivering to the local host port.
    struct ToHostPort(u64);

    impl DataPlane for ToHostPort {
        fn process(&mut self, _: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            StepResult::forward(self.0, packet)
        }
        fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    #[test]
    fn packet_crosses_network_and_trace_records_hops() {
        // Switch 1 forwards out port 1 (to switch 2); switch 2 forwards out
        // port 1... that bounces back. Use ToHostPort(2) on one switch
        // instead: inject at 100, switch 1 sends to port 2 = host 100? No:
        // forward out port 1 crosses to switch 2, which forwards out port 2
        // to host 200. Model that with port = 1 at sw1 and 2 at sw2 by
        // making the data plane depend on the switch.
        struct PerSwitch;
        impl DataPlane for PerSwitch {
            fn process(
                &mut self,
                sw: u64,
                _: u64,
                packet: Packet,
                _: bool,
                _: SimTime,
            ) -> StepResult {
                StepResult::forward(if sw == 1 { 1 } else { 2 }, packet)
            }
            fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
                Vec::new()
            }
            fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
        }
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        e.inject_at(SimTime::ZERO, 100, Packet::new().with(Field::IpDst, 200));
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1);
        assert_eq!(r.stats.deliveries[0].host, 200);
        // Trace: host, 1:2 in, 1:1 out, 2:1 in, 2:2 out, host 200.
        assert_eq!(r.trace.len(), 6);
        assert_eq!(r.trace.traces().len(), 1);
        assert_eq!(r.trace.packet(0).loc, Loc::new(100, 0));
        assert_eq!(r.trace.packet(5).loc, Loc::new(200, 0));
    }

    #[test]
    fn notifications_round_trip_through_controller() {
        let mut e = Engine::new(topo(), SimParams::default(), Fwd1, Box::new(SinkHosts));
        e.inject_at(SimTime::ZERO, 100, Packet::new().with(Field::Vlan, 9));
        let r = e.run_until(SimTime::from_secs(1));
        // The packet bounced between switches until the deadline is *not*
        // true: port 1 of switch 2 links back to switch 1... it loops.
        // What matters here: the run terminated (deadline bounded) and the
        // notification mechanics did not panic.
        assert!(r.stats.injected == 1);
    }

    #[test]
    fn dead_end_output_counts_as_drop() {
        let mut e = Engine::new(topo(), SimParams::default(), ToHostPort(7), Box::new(SinkHosts));
        e.inject_at(SimTime::ZERO, 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.drop_count(Some(DropReason::DeadEnd)), 1);
        assert!(r.stats.deliveries.is_empty());
    }

    #[test]
    fn capacity_limits_throughput_and_queue_drops() {
        // 1 Mbit/s ≈ 125_000 B/s; 1500 B packets take 12 ms each.
        let topo = SimTopology::new([1, 2])
            .host(100, Loc::new(1, 2))
            .host(200, Loc::new(2, 2))
            .bilink(Loc::new(1, 1), Loc::new(2, 1), SimTime::from_micros(50), Some(125_000));
        struct PerSwitch;
        impl DataPlane for PerSwitch {
            fn process(
                &mut self,
                sw: u64,
                _: u64,
                packet: Packet,
                _: bool,
                _: SimTime,
            ) -> StepResult {
                StepResult::forward(if sw == 1 { 1 } else { 2 }, packet)
            }
            fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
                Vec::new()
            }
            fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
        }
        let mut e = Engine::new(topo, SimParams::default(), PerSwitch, Box::new(SinkHosts));
        // Offer 100 packets instantly; 50 ms of queue at 12 ms/packet ≈ 4-5
        // packets in flight; the rest tail-drop.
        for i in 0..100u64 {
            e.inject_at(SimTime::from_micros(i), 100, Packet::new().with(Field::Vlan, i));
        }
        let r = e.run_until(SimTime::from_secs(10));
        assert!(r.stats.drop_count(Some(DropReason::QueueFull)) > 80);
        let got = r.stats.deliveries.len();
        assert!((2..20).contains(&got), "expected a handful delivered, got {got}");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts));
            for i in 0..10 {
                e.inject_at(SimTime::from_millis(i), 100, Packet::new().with(Field::Vlan, i));
            }
            let r = e.run_until(SimTime::from_secs(1));
            (r.trace, r.stats)
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn run_can_resume_without_losing_the_deadline_crossing_event() {
        // `run` pops the first event past the deadline to notice it is
        // past the horizon; it must put it back so a later `run` call
        // still fires it.
        let split = |d1: u64| {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts));
            for i in 0..10 {
                e.inject_at(SimTime::from_millis(i), 100, Packet::new().with(Field::Vlan, i));
            }
            e.run(SimTime::from_millis(d1));
            e.run(SimTime::from_secs(1));
            let r = e.finish();
            (r.trace, r.stats)
        };
        let whole = split(1_000_000); // first run covers everything
        for d1 in [0, 3, 5] {
            assert_eq!(split(d1), whole, "resumed run diverged at split {d1}ms");
        }
    }

    #[test]
    fn inject_batch_equals_one_at_a_time() {
        let run = |batched: bool| {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts));
            let items: Vec<_> = (0..10u64)
                .map(|i| {
                    (SimTime::from_millis(i), 100u64, Packet::new().with(Field::Vlan, i), 64u32)
                })
                .collect();
            if batched {
                e.inject_batch(items);
            } else {
                for (t, h, pk, s) in items {
                    e.inject_sized(t, h, pk, s);
                }
            }
            let r = e.run_until(SimTime::from_secs(1));
            (r.trace, r.stats)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn engine_knobs_replay_identically() {
        // The same scenario on every {queue, trace mode, packet path}
        // combination: Stats must be identical everywhere, traces
        // identical in Full mode and empty in StatsOnly.
        let run = |queue: QueueKind, mode: TraceMode, path: PacketPath| {
            let mut e =
                Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(SinkHosts))
                    .with_queue(queue)
                    .with_trace_mode(mode)
                    .with_packet_path(path);
            assert_eq!(e.queue_kind(), queue);
            assert_eq!(e.trace_mode(), mode);
            assert_eq!(e.packet_path(), path);
            for i in 0..10 {
                e.inject_at(SimTime::from_millis(i), 100, Packet::new().with(Field::Vlan, i));
            }
            let r = e.run_until(SimTime::from_secs(1));
            (r.trace, r.stats)
        };
        let (reference_trace, reference_stats) =
            run(QueueKind::Heap, TraceMode::Full, PacketPath::Owned);
        assert!(!reference_trace.is_empty());
        for queue in [QueueKind::Heap, QueueKind::Calendar] {
            for mode in [TraceMode::Full, TraceMode::StatsOnly] {
                for path in [PacketPath::Owned, PacketPath::Arena] {
                    let (trace, stats) = run(queue, mode, path);
                    assert_eq!(stats, reference_stats, "{queue:?}/{mode:?}/{path:?}");
                    match mode {
                        TraceMode::Full => assert_eq!(trace, reference_trace),
                        TraceMode::StatsOnly => assert!(trace.is_empty()),
                    }
                }
            }
        }
    }

    #[test]
    fn host_replies_are_injected() {
        struct Echo;
        impl HostLogic for Echo {
            fn on_receive(
                &mut self,
                _: u64,
                packet: &Packet,
                _: SimTime,
            ) -> Vec<(SimTime, Packet, u32)> {
                if packet.get(Field::Vlan) == Some(1) {
                    // Reply once (vlan 2 so it doesn't echo forever).
                    vec![(SimTime::from_micros(100), packet.clone().with(Field::Vlan, 2), 64)]
                } else {
                    Vec::new()
                }
            }
        }
        // Switch 1 port 2 is host 100: deliver straight back out the
        // ingress port so host 100 echoes to itself.
        let mut e = Engine::new(topo(), SimParams::default(), ToHostPort(2), Box::new(Echo));
        e.inject_at(SimTime::ZERO, 100, Packet::new().with(Field::Vlan, 1));
        let r = e.run_until(SimTime::from_secs(1));
        // Two deliveries to host 100: the original echoed, then the reply.
        assert_eq!(r.stats.deliveries.len(), 2);
        assert_eq!(r.stats.injected, 2);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::logic::{CtrlMsg, SinkHosts, StepResult};
    use crate::stats::DropReason;
    use crate::topology::SimTopology;

    struct PerSwitch;
    impl DataPlane for PerSwitch {
        fn process(&mut self, sw: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            StepResult::forward(if sw == 1 { 1 } else { 2 }, packet)
        }
        fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    fn topo() -> SimTopology {
        SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).host(200, Loc::new(2, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            None,
        )
    }

    #[test]
    fn failed_link_drops_only_after_its_time() {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        e.fail_link_at(SimTime::from_millis(10), Loc::new(1, 1), Loc::new(2, 1));
        e.inject_at(SimTime::from_millis(1), 100, Packet::new()); // healthy
        e.inject_at(SimTime::from_millis(20), 100, Packet::new()); // dead
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1);
        assert_eq!(r.stats.drop_count(Some(DropReason::LinkDown)), 1);
    }

    #[test]
    fn failure_is_direction_scoped() {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        // Fail only 2 -> 1; 1 -> 2 traffic is unaffected.
        e.fail_link_at(SimTime::ZERO, Loc::new(2, 1), Loc::new(1, 1));
        e.inject_at(SimTime::from_millis(1), 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.deliveries.len(), 1);
        assert_eq!(r.stats.drop_count(None), 0);
    }

    #[test]
    fn earliest_failure_time_wins() {
        let mut e = Engine::new(topo(), SimParams::default(), PerSwitch, Box::new(SinkHosts));
        e.fail_link_at(SimTime::from_millis(50), Loc::new(1, 1), Loc::new(2, 1));
        e.fail_link_at(SimTime::from_millis(5), Loc::new(1, 1), Loc::new(2, 1));
        e.inject_at(SimTime::from_millis(10), 100, Packet::new());
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(r.stats.drop_count(Some(DropReason::LinkDown)), 1);
    }
}
