//! The engine's future-event set: a calendar (bucket) queue with a binary
//! heap kept as the selectable reference implementation.
//!
//! A discrete-event simulator's single hottest structure is its pending
//! event queue. The engine's original `BinaryHeap` pays `O(log n)` sift
//! work — and cache-hostile pointer chasing — on every push and pop. But
//! simulation events are not adversarial: they are dense in time (link
//! latencies and switch delays put most events within a few hundred
//! microseconds of *now*) and popped in nondecreasing order. A [calendar
//! queue](https://dl.acm.org/doi/10.1145/63039.63045) exploits that: time
//! is divided into fixed-width buckets covering a sliding window; a push
//! is a sorted insert into a (tiny) bucket, a pop takes the head of the
//! first occupied bucket. Events past the window land in an overflow heap
//! and migrate into the window when the wavefront reaches them.
//!
//! Ordering is **identical** to the heap's, including timestamp ties: both
//! implementations pop strictly by the full `(time, sequence, slot)` key,
//! and sequence numbers are unique, so the pop order is a total order that
//! cannot depend on the implementation. The differential proptests below
//! pin that, and the `EDN_QUEUE` environment switch lets any simulation be
//! replayed on both implementations and diffed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A queue entry: fire time, insertion sequence (the deterministic
/// tie-break), and the slab slot holding the event payload.
///
/// Keeping the payload out of the queue keeps reordering operations moving
/// 24-byte keys instead of full event payloads.
pub(crate) type QueuedKey = (SimTime, u64, u32);

/// Which future-event-set implementation the engine schedules through.
///
/// The calendar queue is the default; the binary heap is the reference,
/// kept selectable (env var `EDN_QUEUE`) so any simulation can be replayed
/// on both implementations and diffed — speed must never silently change
/// meaning.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// The reference implementation: `std::collections::BinaryHeap`.
    Heap,
    /// The calendar/bucket queue.
    #[default]
    Calendar,
}

impl QueueKind {
    /// Reads the kind from the `EDN_QUEUE` environment variable (`heap` or
    /// `calendar`); unset means [`QueueKind::Calendar`].
    ///
    /// # Panics
    ///
    /// Panics if `EDN_QUEUE` is set to anything else.
    pub fn from_env() -> QueueKind {
        match std::env::var("EDN_QUEUE") {
            Ok(v) if v == "heap" => QueueKind::Heap,
            Ok(v) if v == "calendar" => QueueKind::Calendar,
            Ok(v) => panic!("EDN_QUEUE must be `heap` or `calendar`, got {v:?}"),
            Err(_) => QueueKind::Calendar,
        }
    }

    /// The label used in benchmark output (`heap` / `calendar`).
    pub fn label(&self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Calendar => "calendar",
        }
    }
}

/// Number of buckets in the calendar window. With [`BUCKET_WIDTH_US`] this
/// covers a 16 ms sliding window — hundreds of link latencies deep.
const N_BUCKETS: usize = 4096;

/// Width of one bucket in microseconds (a power of two, so the bucket of a
/// time is a shift). Narrow buckets keep the sorted-insert cost tiny even
/// under dense event bursts; the window re-anchors (amortized O(1) per
/// event) when a run's schedule outspans it.
const BUCKET_WIDTH_US: u64 = 4;

const BUCKET_SHIFT: u32 = BUCKET_WIDTH_US.trailing_zeros();

/// The calendar queue proper (see the module docs).
#[derive(Clone, Debug)]
pub(crate) struct CalendarQueue {
    /// Per-bucket pending keys. Buckets are append-only on push and sorted
    /// **descending** lazily, at first pop (`dirty` tracks which buckets
    /// need it), so the minimum pops off the back without paying a sorted
    /// insert per event.
    buckets: Vec<Vec<QueuedKey>>,
    /// One bit per bucket: contains unsorted appends?
    dirty: Vec<u64>,
    /// One bit per bucket: occupied? Lets the pop wavefront skip runs of
    /// empty buckets 64 at a time.
    occupancy: Vec<u64>,
    /// Microsecond time of the start of bucket 0 of the current window.
    win_start: u64,
    /// First bucket that may still be occupied (the pop wavefront).
    cursor: usize,
    /// Keys currently in the window's buckets.
    in_window: usize,
    /// Keys at or past the window's end, awaiting migration.
    overflow: BinaryHeap<Reverse<QueuedKey>>,
}

impl CalendarQueue {
    fn new() -> CalendarQueue {
        CalendarQueue {
            buckets: vec![Vec::new(); N_BUCKETS],
            dirty: vec![0; N_BUCKETS / 64],
            occupancy: vec![0; N_BUCKETS / 64],
            win_start: 0,
            cursor: 0,
            in_window: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.in_window + self.overflow.len()
    }

    fn win_end(&self) -> u64 {
        self.win_start + ((N_BUCKETS as u64) << BUCKET_SHIFT)
    }

    fn mark(&mut self, bucket: usize) {
        self.occupancy[bucket / 64] |= 1 << (bucket % 64);
    }

    fn clear(&mut self, bucket: usize) {
        self.occupancy[bucket / 64] &= !(1 << (bucket % 64));
    }

    /// Appends to a window bucket; ordering is restored lazily at pop.
    fn bucket_insert(&mut self, bucket: usize, key: QueuedKey) {
        let b = &mut self.buckets[bucket];
        // Appending below the current back would break pop order; mark for
        // a lazy re-sort (typical pushes land in untouched buckets, where
        // a single sort at first pop covers the whole bucket).
        if b.last().is_some_and(|&back| back < key) {
            self.dirty[bucket / 64] |= 1 << (bucket % 64);
        }
        b.push(key);
        self.in_window += 1;
        self.mark(bucket);
    }

    fn push(&mut self, key: QueuedKey) {
        let t = key.0.as_micros();
        if t >= self.win_end() {
            self.overflow.push(Reverse(key));
            return;
        }
        // The engine's event loop never schedules into the past, so keys
        // land at or ahead of the pop wavefront there (see `rebuild`). A
        // caller interleaving `Engine::run` with past-time injections can
        // land behind it, though: clamp pre-window keys into bucket 0 (the
        // full-key sort inside a bucket preserves exact pop order) and
        // rewind the wavefront so the next pop sees the key.
        let bucket =
            if t < self.win_start { 0 } else { ((t - self.win_start) >> BUCKET_SHIFT) as usize };
        self.cursor = self.cursor.min(bucket);
        self.bucket_insert(bucket, key);
    }

    /// Re-anchors the window at the overflow's minimum and migrates every
    /// overflow key that now fits. Only called with empty buckets, which is
    /// what makes the re-anchor safe: every pending key is in the overflow,
    /// all pending keys fire at or after `now`, so the new `win_start`
    /// (at/below the pending minimum) can never be above a future push
    /// time.
    fn rebuild(&mut self) {
        debug_assert!(self.in_window == 0 && !self.overflow.is_empty());
        let min = self.overflow.peek().expect("rebuild needs overflow").0;
        self.win_start = (min.0.as_micros() >> BUCKET_SHIFT) << BUCKET_SHIFT;
        self.cursor = 0;
        let end = self.win_end();
        while let Some(&Reverse(key)) = self.overflow.peek() {
            if key.0.as_micros() >= end {
                break;
            }
            self.overflow.pop();
            let bucket = ((key.0.as_micros() - self.win_start) >> BUCKET_SHIFT) as usize;
            self.bucket_insert(bucket, key);
        }
    }

    /// The first occupied bucket at or after `from`, via the occupancy
    /// bitmap.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let (mut word, bit) = (from / 64, from % 64);
        let mut bits = self.occupancy[word] & (!0u64 << bit);
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= self.occupancy.len() {
                return None;
            }
            bits = self.occupancy[word];
        }
    }

    fn pop(&mut self) -> Option<QueuedKey> {
        if self.in_window == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.rebuild();
        }
        let bucket = self.next_occupied(self.cursor).expect("in_window keys are marked");
        self.cursor = bucket;
        let b = &mut self.buckets[bucket];
        if self.dirty[bucket / 64] & (1 << (bucket % 64)) != 0 {
            b.sort_unstable_by(|a, b| b.cmp(a));
            self.dirty[bucket / 64] &= !(1 << (bucket % 64));
        }
        let key = b.pop().expect("occupied buckets are non-empty");
        if b.is_empty() {
            self.clear(bucket);
        }
        self.in_window -= 1;
        Some(key)
    }
}

/// The engine's future-event set, on either implementation.
#[derive(Clone, Debug)]
pub(crate) enum EventQueue {
    /// The reference binary heap.
    Heap(BinaryHeap<Reverse<QueuedKey>>),
    /// The calendar queue.
    Calendar(CalendarQueue),
}

impl EventQueue {
    pub(crate) fn new(kind: QueueKind) -> EventQueue {
        match kind {
            QueueKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            QueueKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
        }
    }

    pub(crate) fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Heap(_) => QueueKind::Heap,
            EventQueue::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Pending events. The engine samples this at each dispatch for the
    /// queue-depth high-water metric.
    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len(),
        }
    }

    pub(crate) fn push(&mut self, key: QueuedKey) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(key)),
            EventQueue::Calendar(c) => c.push(key),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedKey> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(key)| key),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    /// Pre-sizes for `extra` upcoming pushes (a batch injection). Only the
    /// heap benefits; calendar buckets stay demand-grown.
    pub(crate) fn reserve(&mut self, extra: usize) {
        if let EventQueue::Heap(h) = self {
            h.reserve(extra);
        }
    }

    /// Rebuilds this queue on `kind`, preserving the pending set (the
    /// pending→pop order is a total order, so the carrier never matters).
    pub(crate) fn change_kind(&mut self, kind: QueueKind) {
        if self.kind() == kind {
            return;
        }
        let mut next = EventQueue::new(kind);
        while let Some(key) = self.pop() {
            next.push(key);
        }
        *self = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, seq: u64) -> QueuedKey {
        (SimTime::from_micros(t), seq, seq as u32)
    }

    /// Drains both implementations loaded with the same keys and asserts
    /// identical pop sequences.
    fn assert_same_order(keys: &[QueuedKey]) {
        let mut heap = EventQueue::new(QueueKind::Heap);
        let mut cal = EventQueue::new(QueueKind::Calendar);
        for &k in keys {
            heap.push(k);
            cal.push(k);
        }
        assert_eq!(heap.len(), cal.len());
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pops_in_key_order_with_ties() {
        assert_same_order(&[key(50, 0), key(10, 1), key(10, 2), key(10, 3), key(0, 4)]);
    }

    #[test]
    fn far_future_overflow_migrates_back() {
        // Events far past the 128 ms window, pushed out of order, plus a
        // near cluster.
        let mut keys = vec![key(5, 0), key(1_000_000_000, 1), key(3, 2), key(500_000_000, 3)];
        keys.push(key(1_000_000_000, 4)); // tie in the deep overflow
        assert_same_order(&keys);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Simulation-shaped interleaving: pop one, schedule a few relative
        // to the popped time, repeat. Deterministic LCG for spread.
        let mut heap = EventQueue::new(QueueKind::Heap);
        let mut cal = EventQueue::new(QueueKind::Calendar);
        let mut seq = 0u64;
        let push_both = |heap: &mut EventQueue, cal: &mut EventQueue, t: u64, seq: &mut u64| {
            let k = (SimTime::from_micros(t), *seq, *seq as u32);
            *seq += 1;
            heap.push(k);
            cal.push(k);
        };
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..64 {
            push_both(&mut heap, &mut cal, i * 1_000, &mut seq);
        }
        while let Some(a) = heap.pop() {
            let b = cal.pop();
            assert_eq!(Some(a), b);
            // Schedule 0–2 follow-ups at now + {0, 50 µs, …, 200 ms}.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if seq < 4_000 {
                for j in 0..(state % 3) {
                    let delay = [0u64, 50, 7_000, 200_000][((state >> (8 + j)) % 4) as usize];
                    let t = a.0.as_micros() + delay;
                    push_both(&mut heap, &mut cal, t, &mut seq);
                }
            }
        }
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn push_behind_the_cursor_rewinds_the_wavefront() {
        // A key landing inside the window but behind the pop cursor (a
        // caller interleaving pops with earlier-time schedules) must still
        // pop in exact key order — and must not strand (the wavefront only
        // moves forward on its own).
        let mut heap = EventQueue::new(QueueKind::Heap);
        let mut cal = EventQueue::new(QueueKind::Calendar);
        for k in [key(10_000, 0), key(12_000, 1)] {
            heap.push(k);
            cal.push(k);
        }
        // Advance the cursor deep into the window...
        assert_eq!(heap.pop(), cal.pop());
        // ...then schedule before it (but after win_start).
        let behind = key(5_000, 2);
        heap.push(behind);
        cal.push(behind);
        assert_eq!(cal.pop(), Some(behind));
        assert_eq!(heap.pop(), Some(behind));
        assert_eq!(heap.pop(), cal.pop());
        assert_eq!(cal.pop(), None);
        assert_eq!(heap.pop(), None);
    }

    #[test]
    fn past_time_push_still_pops_first() {
        // A push below the calendar's window start (a caller interleaving
        // pops with past-time schedules) must come out in exact key order,
        // like the heap's.
        let mut heap = EventQueue::new(QueueKind::Heap);
        let mut cal = EventQueue::new(QueueKind::Calendar);
        for k in [key(400_000_000, 0), key(500_000_000, 1)] {
            heap.push(k);
            cal.push(k);
        }
        // Drain one each: the calendar re-anchors its window deep into the
        // run...
        assert_eq!(heap.pop(), cal.pop());
        // ...then a key far in that window's past arrives.
        let past = key(3, 2);
        heap.push(past);
        cal.push(past);
        assert_eq!(cal.pop(), Some(past));
        assert_eq!(heap.pop(), Some(past));
        assert_eq!(heap.pop(), cal.pop());
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn change_kind_preserves_the_pending_set() {
        let keys = [key(9, 0), key(2, 1), key(2, 2), key(400_000_000, 3)];
        let mut q = EventQueue::new(QueueKind::Calendar);
        for k in keys {
            q.push(k);
        }
        q.change_kind(QueueKind::Heap);
        assert_eq!(q.kind(), QueueKind::Heap);
        q.change_kind(QueueKind::Heap); // no-op
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(key(2, 1)));
        assert_eq!(q.pop(), Some(key(2, 2)));
        assert_eq!(q.pop(), Some(key(9, 0)));
        assert_eq!(q.pop(), Some(key(400_000_000, 3)));
    }

    #[test]
    fn env_default_is_calendar() {
        // The suite is replayed under explicit EDN_QUEUE settings in CI;
        // only pin the default when the variable is unset.
        match std::env::var("EDN_QUEUE") {
            Err(_) => assert_eq!(QueueKind::from_env(), QueueKind::Calendar),
            Ok(v) => assert_eq!(QueueKind::from_env().label(), v),
        }
        assert_eq!(QueueKind::Heap.label(), "heap");
        assert_eq!(QueueKind::Calendar.label(), "calendar");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Times drawn from a mix of scales: dense near-zero clusters (tie
    /// city), link-latency scale, and far past the calendar window.
    fn arb_times() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(
            prop_oneof![0u64..8, 0u64..500, 0u64..200_000, 0u64..2_000_000_000],
            1..200,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Bulk load → full drain: calendar ≡ heap, including ties.
        #[test]
        fn calendar_pops_exactly_like_the_heap(times in arb_times()) {
            let mut heap = EventQueue::new(QueueKind::Heap);
            let mut cal = EventQueue::new(QueueKind::Calendar);
            for (seq, &t) in times.iter().enumerate() {
                let k = (SimTime::from_micros(t), seq as u64, seq as u32);
                heap.push(k);
                cal.push(k);
            }
            loop {
                let (a, b) = (heap.pop(), cal.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// Simulation-shaped interleaving: after each pop, push follow-ups
        /// at `now + delay` (the only pattern an engine ever produces).
        #[test]
        fn interleaved_schedules_agree(
            initial in arb_times(),
            delays in proptest::collection::vec(0u64..400_000, 0..300),
        ) {
            let mut heap = EventQueue::new(QueueKind::Heap);
            let mut cal = EventQueue::new(QueueKind::Calendar);
            let mut seq = 0u64;
            for &t in &initial {
                let k = (SimTime::from_micros(t), seq, seq as u32);
                seq += 1;
                heap.push(k);
                cal.push(k);
            }
            let mut pending = delays.as_slice();
            loop {
                let (a, b) = (heap.pop(), cal.pop());
                prop_assert_eq!(a, b);
                let Some(now) = a else { break };
                if let Some((&d, rest)) = pending.split_first() {
                    pending = rest;
                    let k = (now.0 + SimTime::from_micros(d), seq, seq as u32);
                    seq += 1;
                    heap.push(k);
                    cal.push(k);
                }
            }
        }
    }
}
