//! Run statistics: deliveries, drops, byte counts.

use netkat::Packet;

use crate::time::SimTime;

/// Why a packet disappeared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// No flow-table rule matched (or the matching rule dropped).
    NoRule,
    /// The output port has no link attached.
    DeadEnd,
    /// Tail drop on a saturated link queue.
    QueueFull,
    /// The link was down (injected failure).
    LinkDown,
}

/// A delivered packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// Delivery time.
    pub time: SimTime,
    /// Receiving host.
    pub host: u64,
    /// The packet as delivered.
    pub packet: Packet,
    /// Size in bytes.
    pub size: u32,
}

/// A dropped packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Drop {
    /// Drop time.
    pub time: SimTime,
    /// Switch where the packet died.
    pub switch: u64,
    /// The packet.
    pub packet: Packet,
    /// Why.
    pub reason: DropReason,
}

/// Aggregate statistics of a run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Every delivery, in time order.
    pub deliveries: Vec<Delivery>,
    /// Every drop, in time order.
    pub drops: Vec<Drop>,
    /// Packets injected by hosts.
    pub injected: u64,
    /// Discrete events the engine dispatched (injections, arrivals,
    /// controller notifications and deliveries) — the scale harness's
    /// work-done metric.
    pub events_processed: u64,
}

impl Stats {
    /// Deliveries at a particular host.
    pub fn delivered_to(&self, host: u64) -> impl Iterator<Item = &Delivery> + '_ {
        self.deliveries.iter().filter(move |d| d.host == host)
    }

    /// Total bytes delivered to `host` within `[from, to)`.
    pub fn bytes_delivered(&self, host: u64, from: SimTime, to: SimTime) -> u64 {
        self.delivered_to(host)
            .filter(|d| d.time >= from && d.time < to)
            .map(|d| d.size as u64)
            .sum()
    }

    /// Number of drops, optionally filtered by reason.
    pub fn drop_count(&self, reason: Option<DropReason>) -> usize {
        match reason {
            None => self.drops.len(),
            Some(r) => self.drops.iter().filter(|d| d.reason == r).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting_windows() {
        let mut s = Stats::default();
        for (t, host, size) in [(1u64, 7u64, 100u32), (2, 7, 200), (3, 8, 400)] {
            s.deliveries.push(Delivery {
                time: SimTime::from_millis(t),
                host,
                packet: Packet::new(),
                size,
            });
        }
        assert_eq!(s.bytes_delivered(7, SimTime::ZERO, SimTime::from_millis(10)), 300);
        assert_eq!(s.bytes_delivered(7, SimTime::from_millis(2), SimTime::from_millis(10)), 200);
        assert_eq!(s.bytes_delivered(8, SimTime::ZERO, SimTime::from_millis(10)), 400);
        assert_eq!(s.delivered_to(7).count(), 2);
    }

    #[test]
    fn drop_filtering() {
        let mut s = Stats::default();
        for reason in [DropReason::NoRule, DropReason::NoRule, DropReason::QueueFull] {
            s.drops.push(Drop { time: SimTime::ZERO, switch: 1, packet: Packet::new(), reason });
        }
        assert_eq!(s.drop_count(None), 3);
        assert_eq!(s.drop_count(Some(DropReason::NoRule)), 2);
        assert_eq!(s.drop_count(Some(DropReason::DeadEnd)), 0);
    }
}
