//! Run statistics: deliveries, drops, byte counts.

use netkat::Packet;

use crate::time::SimTime;

/// Why a packet disappeared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// No flow-table rule matched (or the matching rule dropped).
    NoRule,
    /// The output port has no link attached.
    DeadEnd,
    /// Tail drop on a saturated link queue.
    QueueFull,
    /// The link was down (injected failure).
    LinkDown,
}

impl DropReason {
    /// Every reason, in [`DropReason::index`] order — iterate this to
    /// report named per-reason counts from [`Stats::dropped`].
    pub const ALL: [DropReason; 4] =
        [DropReason::NoRule, DropReason::DeadEnd, DropReason::QueueFull, DropReason::LinkDown];

    /// The reason's index into [`Stats::dropped`].
    pub fn index(self) -> usize {
        match self {
            DropReason::NoRule => 0,
            DropReason::DeadEnd => 1,
            DropReason::QueueFull => 2,
            DropReason::LinkDown => 3,
        }
    }

    /// A short static name for reports and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::NoRule => "no_rule",
            DropReason::DeadEnd => "dead_end",
            DropReason::QueueFull => "queue_full",
            DropReason::LinkDown => "link_down",
        }
    }
}

/// How much per-packet detail a run's [`Stats`] retain.
///
/// The aggregate counters ([`Stats::injected`], [`Stats::events_processed`],
/// [`Stats::delivered_packets`], [`Stats::delivered_bytes`],
/// [`Stats::dropped`]) are maintained identically in **both** modes; the
/// mode only decides whether the per-packet [`Stats::deliveries`] and
/// [`Stats::drops`] streams are kept. [`StatsMode::Counters`] keeps them
/// empty, so a run's memory no longer grows with the delivery count — the
/// companion of [`TraceMode::StatsOnly`](edn_core::TraceMode) for
/// verified-at-scale runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StatsMode {
    /// Record every delivery and drop (the default).
    Full,
    /// Aggregate counters only; `deliveries` and `drops` stay empty.
    Counters,
}

impl StatsMode {
    /// Reads the mode from `EDN_STATS` (`full` or `counters`); unset means
    /// [`StatsMode::Full`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value.
    pub fn from_env() -> StatsMode {
        match std::env::var("EDN_STATS").as_deref() {
            Ok("full") | Err(_) => StatsMode::Full,
            Ok("counters") => StatsMode::Counters,
            Ok(other) => panic!("EDN_STATS must be `full` or `counters`, got `{other}`"),
        }
    }

    /// A short label for benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            StatsMode::Full => "full",
            StatsMode::Counters => "counters",
        }
    }
}

/// A delivered packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// Delivery time.
    pub time: SimTime,
    /// Receiving host.
    pub host: u64,
    /// The packet as delivered.
    pub packet: Packet,
    /// Size in bytes.
    pub size: u32,
}

/// A dropped packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Drop {
    /// Drop time.
    pub time: SimTime,
    /// Switch where the packet died.
    pub switch: u64,
    /// The packet.
    pub packet: Packet,
    /// Why.
    pub reason: DropReason,
}

/// Aggregate statistics of a run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Every delivery, in time order.
    pub deliveries: Vec<Delivery>,
    /// Every drop, in time order.
    pub drops: Vec<Drop>,
    /// Packets injected by hosts.
    pub injected: u64,
    /// Discrete events the engine dispatched (injections, arrivals,
    /// controller notifications and deliveries) — the scale harness's
    /// work-done metric.
    pub events_processed: u64,
    /// Total packets delivered (maintained in every [`StatsMode`], so a
    /// [`StatsMode::Counters`] run still reports throughput).
    pub delivered_packets: u64,
    /// Total bytes delivered (maintained in every [`StatsMode`]).
    pub delivered_bytes: u64,
    /// Drop counts by [`DropReason::index`] (maintained in every
    /// [`StatsMode`]).
    pub dropped: [u64; 4],
}

impl Stats {
    /// Deliveries at a particular host.
    pub fn delivered_to(&self, host: u64) -> impl Iterator<Item = &Delivery> + '_ {
        self.deliveries.iter().filter(move |d| d.host == host)
    }

    /// Total bytes delivered to `host` within `[from, to)`.
    pub fn bytes_delivered(&self, host: u64, from: SimTime, to: SimTime) -> u64 {
        self.delivered_to(host)
            .filter(|d| d.time >= from && d.time < to)
            .map(|d| d.size as u64)
            .sum()
    }

    /// Number of drops, optionally filtered by reason.
    pub fn drop_count(&self, reason: Option<DropReason>) -> usize {
        match reason {
            None => self.drops.len(),
            Some(r) => self.drops.iter().filter(|d| d.reason == r).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting_windows() {
        let mut s = Stats::default();
        for (t, host, size) in [(1u64, 7u64, 100u32), (2, 7, 200), (3, 8, 400)] {
            s.deliveries.push(Delivery {
                time: SimTime::from_millis(t),
                host,
                packet: Packet::new(),
                size,
            });
        }
        assert_eq!(s.bytes_delivered(7, SimTime::ZERO, SimTime::from_millis(10)), 300);
        assert_eq!(s.bytes_delivered(7, SimTime::from_millis(2), SimTime::from_millis(10)), 200);
        assert_eq!(s.bytes_delivered(8, SimTime::ZERO, SimTime::from_millis(10)), 400);
        assert_eq!(s.delivered_to(7).count(), 2);
    }

    #[test]
    fn reason_names_align_with_indices() {
        for (i, r) in DropReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(DropReason::QueueFull.name(), "queue_full");
    }

    #[test]
    fn drop_filtering() {
        let mut s = Stats::default();
        for reason in [DropReason::NoRule, DropReason::NoRule, DropReason::QueueFull] {
            s.drops.push(Drop { time: SimTime::ZERO, switch: 1, packet: Packet::new(), reason });
        }
        assert_eq!(s.drop_count(None), 3);
        assert_eq!(s.drop_count(Some(DropReason::NoRule)), 2);
        assert_eq!(s.drop_count(Some(DropReason::DeadEnd)), 0);
    }
}
