//! Run one scenario end to end and print its canonical CSV.
//!
//! ```text
//! scenario_run <spec.toml>     # run a spec file
//! scenario_run --seed <n>      # run ScenarioGen::sample(n)
//! ```
//!
//! Three legs per invocation, with cross-checks the process enforces:
//!
//! 1. coordinated, batch traffic, shard count from `EDN_SHARDS`;
//! 2. the same leg again — replay determinism, byte for byte;
//! 3. coordinated, *streamed* traffic with the online Definition 6 checker
//!    attached (single-threaded) — must match leg 1 byte for byte.
//!
//! The printed CSV row comes from the checked leg and carries no
//! shard-dependent column, so `EDN_SHARDS=1` and `EDN_SHARDS=4` runs must
//! produce identical bytes (CI `cmp`s them). Comment lines start with `#`.

use std::process::ExitCode;

use edn_scenario::{
    parse, run_coordinated, stats_csv_header, stats_csv_row, CompiledScenario, RunOptions,
    ScenarioGen,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = match args.as_slice() {
        [flag, seed] if flag == "--seed" => match seed.parse() {
            Ok(seed) => ScenarioGen::sample(seed),
            Err(_) => {
                eprintln!("scenario_run: `{seed}` is not a u64 seed");
                return ExitCode::FAILURE;
            }
        },
        [path] => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("scenario_run: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse(&text) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("scenario_run: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            eprintln!("usage: scenario_run <spec.toml> | scenario_run --seed <n>");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match CompiledScenario::compile(&spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("scenario_run: {e}");
            return ExitCode::FAILURE;
        }
    };

    let batch = run_coordinated(&compiled, &RunOptions::default());
    let replay = run_coordinated(&compiled, &RunOptions::default());
    if batch.stats != replay.stats {
        eprintln!("scenario_run: replay diverged — determinism regression");
        return ExitCode::FAILURE;
    }
    let checked = run_coordinated(
        &compiled,
        &RunOptions { check: true, stream: true, ..RunOptions::default() },
    );
    if batch.stats != checked.stats {
        eprintln!("scenario_run: streamed+checked leg diverged from batch leg");
        return ExitCode::FAILURE;
    }

    println!(
        "# scenario {} seed {} topology {} steps {} actions {}",
        spec.name,
        spec.seed,
        spec.topology.kind(),
        compiled.steps.len(),
        compiled.actions.len()
    );
    println!("{}", stats_csv_header());
    println!("{}", stats_csv_row(&checked));
    if checked.degraded {
        // Budget exhaustion is an explicit outcome, not a silent failure:
        // the verdict column reads `degraded` and the message-level
        // post-mortem lands where `EDN_FLIGHT_OUT` points.
        let path = netsim::FlightRecorder::dump_path_from_env("edn_flight.json");
        if let Some(dump) = &checked.flight_dump {
            if let Err(e) = std::fs::write(&path, dump) {
                eprintln!("scenario_run: could not write flight dump {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("scenario_run: retry budget exhausted — degraded; flight dump at {path}");
        return ExitCode::SUCCESS;
    }
    if checked.verdict != Some(Ok(())) {
        eprintln!("scenario_run: coordinated verdict was not `correct`");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
