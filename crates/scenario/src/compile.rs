//! Compiling a [`ScenarioSpec`] into runnable form: a topology (with mobile
//! twins for moved hosts), a chain-NES update campaign, engine action and
//! injection timelines, and the background traffic.
//!
//! The campaign's steps are synthesized from the spec:
//!
//! * each of the `updates` **generic steps** unblocks one seeded-chosen
//!   *victim* host — the initial configuration carries no rules toward the
//!   victims, and step `i` restores victim `i`'s shortest-path rules
//!   (successive policy rollouts, in the paper's event-driven-update
//!   framing);
//! * each `move_host` action becomes a **mobility step** re-pointing the
//!   host's rules at its twin attachment ([`edn_topo::rehomed_rules`]).
//!
//! Steps are driven by marker packets ([`nes_runtime::campaign_trigger`])
//! sent from the topology's first host to its second — two endpoints every
//! configuration routes — so the chain fires in order. When `probe` is set,
//! each step is followed by a probe **from the trigger's destination** to
//! the step's target host: the probe's sender has just received the
//! trigger, so the probe is causally after the firing, and a plane that
//! drops it under a stale configuration (the uncoordinated baseline mid
//! push) violates Definition 6 — the generalization of the paper's Fig. 10
//! counterexample that makes scenarios a differential oracle.

use std::collections::{BTreeMap, BTreeSet};

use edn_core::NetworkEventStructure;
use edn_topo::{
    config_from_rules, fat_tree, grid, linear, rehomed_rules, ring, shortest_path_rules,
    synthesize, synthesize_arrivals, torus, with_mobile_twin, ArrivalModel, GenTopology,
    LinkProfile, TierProfile, Workload,
};
use nes_runtime::{campaign_nes, campaign_pred, campaign_trigger, CampaignStep};
use netkat::{Field, Loc, Packet, Rule};
use netsim::traffic::{udp_packet, UdpFlowSpec};
use netsim::{DataPlane, Engine, SimParams, SimTime};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::spec::{
    validate, ActionKind, ModelSpec, ScenarioError, ScenarioSpec, TopologySpec, WorkloadSpec,
};

/// Gap between a campaign step's trigger and its probe: long enough for the
/// trigger to traverse any of the generated topologies, far shorter than
/// any realistic `update_delay`.
pub fn probe_delay() -> SimTime {
    SimTime::from_millis(5)
}

/// Flow-id base for probe packets — far above workload flow ids (`0..`) and
/// below trigger flow ids (`u64::MAX - step`).
pub const PROBE_FLOW_BASE: u64 = 1 << 62;

/// What a campaign step does, for reports and assertions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepTarget {
    /// The step restores routing toward this previously-blocked host.
    Unblock(u64),
    /// The step re-homes `host` to switch `to` (rules move to its twin).
    Move {
        /// The moving host's id.
        host: u64,
        /// Its new attachment switch.
        to: u64,
    },
}

impl StepTarget {
    /// The host whose connectivity the step changes (probe destination).
    pub fn host(&self) -> u64 {
        match *self {
            StepTarget::Unblock(h) => h,
            StepTarget::Move { host, .. } => host,
        }
    }
}

/// One planned campaign step: its trigger time and effect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlannedStep {
    /// When the step's trigger packet is injected.
    pub time: SimTime,
    /// What the step changes.
    pub target: StepTarget,
}

/// A scripted engine manipulation, resolved against the run topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineAction {
    /// Fail both directions of a link.
    FailBilink(SimTime, Loc, Loc),
    /// Restore both directions of a link.
    RestoreBilink(SimTime, Loc, Loc),
    /// Crash a switch (all inter-switch links down).
    Crash(SimTime, u64),
    /// Recover a crashed switch.
    Recover(SimTime, u64),
    /// Set the controller latency from an instant onward.
    CtrlLatency(SimTime, SimTime),
}

/// A scenario compiled into runnable form.
#[derive(Clone, Debug)]
pub struct CompiledScenario {
    /// The spec this was compiled from.
    pub spec: ScenarioSpec,
    /// The bare generated topology (no twins) — workload endpoints and the
    /// host list index into this.
    pub base: GenTopology,
    /// The run topology: `base` plus a mobile twin per moved host.
    pub run: GenTopology,
    /// The campaign as a chain network event structure.
    pub nes: NetworkEventStructure,
    /// The campaign's steps in firing order.
    pub steps: Vec<PlannedStep>,
    /// Engine manipulations, in spec order.
    pub actions: Vec<EngineAction>,
    /// Step trigger injections: `(time, injecting host, packet)`.
    pub triggers: Vec<(SimTime, u64, Packet)>,
    /// Causal probe injections: `(time, injecting host, packet)`.
    pub probes: Vec<(SimTime, u64, Packet)>,
    /// The background traffic.
    pub flows: Vec<UdpFlowSpec>,
    /// The run deadline (spec horizon, or computed).
    pub horizon: SimTime,
}

pub(crate) fn build_topology(spec: TopologySpec) -> GenTopology {
    match spec {
        TopologySpec::Ring(n) => ring(n, LinkProfile::default()),
        TopologySpec::Linear(n) => linear(n, LinkProfile::default()),
        TopologySpec::Grid(r, c) => grid(r, c, LinkProfile::default()),
        TopologySpec::Torus(r, c) => torus(r, c, LinkProfile::default()),
        TopologySpec::FatTree(k) => fat_tree(k, TierProfile::default()),
    }
}

fn build_flows(base: &GenTopology, seed: u64, w: &WorkloadSpec) -> Vec<UdpFlowSpec> {
    let workload = Workload {
        pattern: w.pattern,
        seed,
        flows: w.flows,
        packets_per_flow: w.packets_per_flow,
        interval: w.interval,
        size: w.size,
        start: w.start,
        spread: w.spread,
    };
    match w.model {
        ModelSpec::None => synthesize(base, &workload),
        ModelSpec::Pareto => synthesize_arrivals(
            base,
            &workload,
            &ArrivalModel::Pareto { alpha: 1.3, max_packets: workload.packets_per_flow.max(1) * 8 },
        ),
        ModelSpec::OnOff => synthesize_arrivals(
            base,
            &workload,
            &ArrivalModel::OnOff { burst_packets: 3, off: SimTime::from_millis(2) },
        ),
        ModelSpec::Diurnal => synthesize_arrivals(
            base,
            &workload,
            &ArrivalModel::Diurnal { periods: 2, trough_pct: 20 },
        ),
    }
}

impl CompiledScenario {
    /// Compiles a spec. Deterministic: equal specs compile to equal
    /// scenarios, byte for byte.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] when the spec names structure the
    /// topology doesn't have (unknown links or switches, out-of-range host
    /// indices), needs more victims than there are spare hosts, or
    /// schedules two campaign steps at the same instant.
    pub fn compile(spec: &ScenarioSpec) -> Result<CompiledScenario, ScenarioError> {
        validate(spec)?;
        let base = build_topology(spec.topology);
        let hosts: Vec<u64> = base.hosts().to_vec();
        if hosts.len() < 2 {
            return Err(ScenarioError::Invalid(format!(
                "{} has {} hosts; scenarios need at least 2",
                base.name(),
                hosts.len()
            )));
        }
        let switches: BTreeSet<u64> = base.sim().switches().iter().copied().collect();

        // Mobility: validate the movers and extend the topology with twins.
        let mut movers: Vec<(SimTime, u64, u64)> = Vec::new(); // (at, host, to)
        for a in &spec.actions {
            if let ActionKind::MoveHost { host, to } = a.kind {
                if host < 2 || host >= hosts.len() {
                    return Err(ScenarioError::Invalid(format!(
                        "move_host host index {host} out of range 2..{}",
                        hosts.len()
                    )));
                }
                if !switches.contains(&to) {
                    return Err(ScenarioError::Invalid(format!(
                        "move_host target {to} is not a switch of {}",
                        base.name()
                    )));
                }
                let id = hosts[host];
                if movers.iter().any(|&(_, h, _)| h == id) {
                    return Err(ScenarioError::Invalid(format!("host {id} moves twice")));
                }
                movers.push((a.at, id, to));
            }
        }
        let mut run = base.clone();
        for &(_, host, to) in &movers {
            run = with_mobile_twin(&run, host, to);
        }

        // Victims: seeded draw from the hosts that are neither campaign
        // endpoints nor movers.
        let mover_ids: BTreeSet<u64> = movers.iter().map(|&(_, h, _)| h).collect();
        let mut pool: Vec<u64> =
            hosts[2..].iter().copied().filter(|h| !mover_ids.contains(h)).collect();
        if pool.len() < spec.campaign.updates {
            return Err(ScenarioError::Invalid(format!(
                "{} spare hosts cannot host {} update victims",
                pool.len(),
                spec.campaign.updates
            )));
        }
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5343_454e_4152_4f21); // "SCENARO!"
        pool.shuffle(&mut rng);
        let victims: Vec<u64> = pool[..spec.campaign.updates].to_vec();

        // The step plan: generic unblocks on the campaign grid, moves at
        // their action times, merged in time order.
        let mut steps: Vec<PlannedStep> = Vec::new();
        for (i, &v) in victims.iter().enumerate() {
            let at = spec.campaign.start.as_micros() + spec.campaign.spacing.as_micros() * i as u64;
            steps.push(PlannedStep {
                time: SimTime::from_micros(at),
                target: StepTarget::Unblock(v),
            });
        }
        for &(at, host, to) in &movers {
            steps.push(PlannedStep { time: at, target: StepTarget::Move { host, to } });
        }
        steps.sort_by_key(|s| s.time);
        for pair in steps.windows(2) {
            if pair[0].time == pair[1].time {
                return Err(ScenarioError::Invalid(format!(
                    "campaign steps {:?} and {:?} coincide at {:?}",
                    pair[0].target, pair[1].target, pair[0].time
                )));
            }
        }

        // Per-state configurations: full shortest paths, minus rules toward
        // still-blocked victims, with moved hosts' rules re-pointed at
        // their twins.
        let full = shortest_path_rules(&run);
        let rehomed: BTreeMap<u64, BTreeMap<u64, Rule>> =
            mover_ids.iter().map(|&h| (h, rehomed_rules(&run, h))).collect();
        let state_rules = |blocked: &BTreeSet<u64>, moved: &BTreeSet<u64>| {
            let mut out: BTreeMap<u64, Vec<Rule>> = BTreeMap::new();
            for (&sw, list) in &full {
                let mut rules = Vec::with_capacity(list.len());
                for r in list {
                    let dst = r.pattern.get(Field::IpDst).expect("routing rules match ip_dst");
                    if dst >= edn_topo::MOBILE_TWIN_OFFSET || blocked.contains(&dst) {
                        continue; // twins are never addressed directly
                    }
                    if moved.contains(&dst) {
                        if let Some(r2) = rehomed[&dst].get(&sw) {
                            rules.push(r2.clone());
                        }
                    } else {
                        rules.push(r.clone());
                    }
                }
                out.insert(sw, rules);
            }
            out
        };
        let mut blocked: BTreeSet<u64> = victims.iter().copied().collect();
        let mut moved: BTreeSet<u64> = BTreeSet::new();
        let initial = config_from_rules(&run, state_rules(&blocked, &moved));
        let trigger_host = hosts[0];
        let trigger_dst = hosts[1];
        let trigger_loc = run.attachment(trigger_host).expect("generated hosts are attached");
        let mut campaign_steps = Vec::with_capacity(steps.len());
        for (i, step) in steps.iter().enumerate() {
            match step.target {
                StepTarget::Unblock(h) => {
                    blocked.remove(&h);
                }
                StepTarget::Move { host, .. } => {
                    moved.insert(host);
                }
            }
            campaign_steps.push(CampaignStep {
                trigger: campaign_pred(i),
                loc: trigger_loc,
                config: config_from_rules(&run, state_rules(&blocked, &moved)),
            });
        }
        let nes = campaign_nes(initial, campaign_steps)
            .map_err(|e| ScenarioError::Invalid(format!("campaign NES rejected: {e:?}")))?;

        // Trigger and probe injections.
        let mut triggers = Vec::with_capacity(steps.len());
        let mut probes = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            triggers.push((
                step.time,
                trigger_host,
                campaign_trigger(trigger_host, trigger_dst, i),
            ));
            if spec.campaign.probe {
                probes.push((
                    step.time + probe_delay(),
                    trigger_dst,
                    udp_packet(trigger_dst, step.target.host(), PROBE_FLOW_BASE + i as u64, 0),
                ));
            }
        }

        // Engine actions, resolved against the run topology's links.
        let baseline = SimParams::default().controller_latency;
        let bilink = |a: u64, b: u64| {
            run.sim()
                .links()
                .iter()
                .find(|l| l.src.sw == a && l.dst.sw == b)
                .map(|l| (l.src, l.dst))
                .ok_or_else(|| {
                    ScenarioError::Invalid(format!("no link {a} ↔ {b} in {}", run.name()))
                })
        };
        let known_switch = |sw: u64| {
            switches.contains(&sw).then_some(sw).ok_or_else(|| {
                ScenarioError::Invalid(format!("{sw} is not a switch of {}", run.name()))
            })
        };
        let mut actions = Vec::new();
        for a in &spec.actions {
            match a.kind {
                ActionKind::FailLink { a: x, b: y } => {
                    let (src, dst) = bilink(x, y)?;
                    actions.push(EngineAction::FailBilink(a.at, src, dst));
                }
                ActionKind::RestoreLink { a: x, b: y } => {
                    let (src, dst) = bilink(x, y)?;
                    actions.push(EngineAction::RestoreBilink(a.at, src, dst));
                }
                ActionKind::CrashSwitch { sw } => {
                    actions.push(EngineAction::Crash(a.at, known_switch(sw)?));
                }
                ActionKind::RecoverSwitch { sw } => {
                    actions.push(EngineAction::Recover(a.at, known_switch(sw)?));
                }
                ActionKind::LatencySpike { latency, until } => {
                    // Clamped to the baseline: a below-baseline latency
                    // would force the engine single-threaded, and the spike
                    // is about slowness anyway.
                    actions.push(EngineAction::CtrlLatency(a.at, latency.max(baseline)));
                    actions.push(EngineAction::CtrlLatency(until, baseline));
                }
                ActionKind::MoveHost { .. } => {} // already a campaign step
            }
        }

        // Background traffic over the *base* hosts (twins are reached via
        // their base address, never directly).
        let flows = build_flows(&base, spec.seed, &spec.workload);

        let horizon = if spec.horizon > SimTime::ZERO {
            spec.horizon
        } else {
            let mut last = SimTime::ZERO;
            for f in &flows {
                last = last.max(f.end);
            }
            for s in &steps {
                last = last.max(s.time + probe_delay());
            }
            for a in &spec.actions {
                last = last.max(a.at);
                if let ActionKind::LatencySpike { until, .. } = a.kind {
                    last = last.max(until);
                }
            }
            last + SimTime::from_secs(1)
        };

        Ok(CompiledScenario {
            spec: spec.clone(),
            base,
            run,
            nes,
            steps,
            actions,
            triggers,
            probes,
            flows,
            horizon,
        })
    }

    /// Builds the coordinated (NES runtime) engine for this scenario:
    /// deployment knobs and shard count from the environment (`EDN_LOOKUP`,
    /// `EDN_COMPILE`, `EDN_OPTIMIZE`, `EDN_SHARDS`), no controller
    /// broadcast, sink hosts.
    pub fn engine(&self) -> Engine<nes_runtime::NesDataPlane> {
        self.engine_with(nes_runtime::DeployKnobs::from_env())
    }

    /// [`engine`](CompiledScenario::engine) with the deployment knobs
    /// pinned explicitly (shard count still from the environment).
    pub fn engine_with(
        &self,
        knobs: nes_runtime::DeployKnobs,
    ) -> Engine<nes_runtime::NesDataPlane> {
        nes_runtime::nes_engine_with(
            self.nes.clone(),
            self.run.sim().clone(),
            SimParams::default(),
            false,
            Box::new(netsim::SinkHosts),
            knobs,
        )
    }

    /// [`engine_with`](CompiledScenario::engine_with) wrapped in the
    /// [`Reliable`](nes_runtime::Reliable) ack/retry layer — the
    /// deployment for lossy-channel runs. `budget` bounds retransmissions
    /// per message before the run degrades.
    pub fn reliable_engine_with(
        &self,
        knobs: nes_runtime::DeployKnobs,
        budget: u32,
    ) -> Engine<nes_runtime::Reliable<nes_runtime::NesDataPlane>> {
        nes_runtime::nes_reliable_engine_with(
            self.nes.clone(),
            self.run.sim().clone(),
            SimParams::default(),
            false,
            Box::new(netsim::SinkHosts),
            knobs,
            budget,
        )
    }

    /// Builds the uncoordinated-baseline engine: the spec's `update_delay`
    /// and seed drive the controller's push timing and order.
    pub fn uncoordinated(&self) -> Engine<nes_runtime::UncoordDataPlane> {
        nes_runtime::uncoordinated_engine(
            self.nes.clone(),
            self.run.sim().clone(),
            SimParams::default(),
            self.spec.campaign.update_delay,
            self.spec.seed,
            Box::new(netsim::SinkHosts),
        )
    }

    /// Applies the scripted engine actions (failures, recoveries, latency
    /// spikes) to an engine's timelines.
    pub fn apply_actions<D: DataPlane>(&self, engine: &mut Engine<D>) {
        for a in &self.actions {
            match *a {
                EngineAction::FailBilink(t, x, y) => engine.fail_bilink_at(t, x, y),
                EngineAction::RestoreBilink(t, x, y) => engine.restore_bilink_at(t, x, y),
                EngineAction::Crash(t, sw) => engine.crash_switch_at(t, sw),
                EngineAction::Recover(t, sw) => engine.recover_switch_at(t, sw),
                EngineAction::CtrlLatency(t, l) => engine.set_controller_latency_at(t, l),
            }
        }
    }

    /// Injects the campaign's triggers and probes.
    pub fn inject_campaign<D: DataPlane>(&self, engine: &mut Engine<D>) {
        for &(t, host, ref p) in self.triggers.iter().chain(&self.probes) {
            engine.inject_at(t, host, p.clone());
        }
    }

    /// Loads the background traffic — as a live streamed source
    /// (`stream = true`, single-threaded) or as pre-scheduled batch
    /// injections (byte-identical either way) — returning the datagram
    /// count.
    pub fn load_traffic<D: DataPlane>(&self, engine: &mut Engine<D>, stream: bool) -> u64 {
        if stream {
            edn_topo::attach_stream(engine, &self.flows)
        } else {
            edn_topo::schedule(engine, &self.flows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ActionSpec, CampaignSpec};

    fn churn_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "ring-churn".to_string(),
            seed: 11,
            topology: TopologySpec::Ring(6),
            horizon: SimTime::ZERO,
            workload: WorkloadSpec::default(),
            campaign: CampaignSpec { updates: 2, ..CampaignSpec::default() },
            channel: crate::spec::ChannelSpec::default(),
            actions: vec![
                ActionSpec {
                    at: SimTime::from_millis(130),
                    kind: ActionKind::FailLink { a: 1, b: 2 },
                },
                ActionSpec {
                    at: SimTime::from_millis(170),
                    kind: ActionKind::RestoreLink { a: 1, b: 2 },
                },
                ActionSpec {
                    at: SimTime::from_millis(250),
                    kind: ActionKind::MoveHost { host: 2, to: 5 },
                },
            ],
        }
    }

    #[test]
    fn compiles_the_campaign_chain() {
        let c = CompiledScenario::compile(&churn_spec()).unwrap();
        assert_eq!(c.steps.len(), 3, "2 unblocks + 1 move");
        assert_eq!(c.nes.structure().event_sets().len(), 4, "∅ + 3 prefixes");
        assert_eq!(c.triggers.len(), 3);
        assert_eq!(c.probes.len(), 3, "probe per step");
        assert_eq!(c.actions.len(), 2, "the move became a step, not an action");
        assert_eq!(c.run.host_count(), c.base.host_count() + 1, "one twin");
        assert!(c.horizon >= SimTime::from_secs(1));
        // Victims and movers never touch the campaign endpoints.
        let hosts = c.base.hosts().to_vec();
        for s in &c.steps {
            assert_ne!(s.target.host(), hosts[0]);
            assert_ne!(s.target.host(), hosts[1]);
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        let (a, b) = (
            CompiledScenario::compile(&churn_spec()).unwrap(),
            CompiledScenario::compile(&churn_spec()).unwrap(),
        );
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.triggers, b.triggers);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.horizon, b.horizon);
    }

    #[test]
    fn rejects_impossible_structure() {
        let mut no_link = churn_spec();
        no_link.actions[0] = ActionSpec {
            at: SimTime::from_millis(130),
            kind: ActionKind::FailLink { a: 1, b: 4 }, // rings have no chords
        };
        assert!(matches!(CompiledScenario::compile(&no_link), Err(ScenarioError::Invalid(_))));

        let mut too_many = churn_spec();
        too_many.campaign.updates = 10; // ring(6) has only 6 hosts
        assert!(matches!(CompiledScenario::compile(&too_many), Err(ScenarioError::Invalid(_))));

        let mut bad_move = churn_spec();
        bad_move.actions[2] = ActionSpec {
            at: SimTime::from_millis(250),
            kind: ActionKind::MoveHost { host: 0, to: 5 }, // trigger host
        };
        assert!(matches!(CompiledScenario::compile(&bad_move), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn latency_spikes_clamp_to_baseline() {
        let mut spec = churn_spec();
        spec.actions.push(ActionSpec {
            at: SimTime::from_millis(300),
            kind: ActionKind::LatencySpike {
                latency: SimTime::from_micros(1), // below baseline
                until: SimTime::from_millis(400),
            },
        });
        let c = CompiledScenario::compile(&spec).unwrap();
        let baseline = SimParams::default().controller_latency;
        assert!(c.actions.iter().all(|a| match *a {
            EngineAction::CtrlLatency(_, l) => l >= baseline,
            _ => true,
        }));
    }
}
