//! Running compiled scenarios and reporting canonical results.
//!
//! Three legs, all fed identical traffic and campaign injections:
//!
//! * **coordinated, unchecked** — the NES runtime, shard count free (the
//!   byte-identity leg: `EDN_SHARDS` must not change a byte of the stats);
//! * **coordinated, checked** — the NES runtime with the online
//!   Definition 6 checker attached (single-threaded: the engine serializes
//!   under an observer) and optionally live streamed traffic;
//! * **uncoordinated, checked** — the Section 5.1 baseline under the same
//!   scenario, whose verdict the differential oracle compares against.
//!
//! [`differential`] packages the oracle: per Theorem 1 the coordinated
//! verdict must be `correct` on *every* scenario; the uncoordinated verdict
//! is allowed — and under probing usually observed — to be a violation.

use edn_core::OnlineViolation;
use netsim::{ChannelModel, Stats};

use crate::compile::CompiledScenario;
use crate::spec::{ScenarioError, ScenarioSpec};

/// Options for a coordinated run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunOptions {
    /// Extra shard-count override (`None` leaves `EDN_SHARDS` in charge).
    pub shards: Option<u32>,
    /// Attach the online Definition 6 checker (forces single-threaded).
    pub check: bool,
    /// Feed traffic through a live [`WorkloadSource`](netsim::WorkloadSource)
    /// instead of batch pre-scheduling (byte-identical results).
    pub stream: bool,
    /// Table-construction override (`None` leaves `EDN_COMPILE` in charge).
    pub compile: Option<nes_runtime::CompilePath>,
    /// Optimizer override (`None` leaves `EDN_OPTIMIZE` in charge).
    pub optimize: Option<nes_runtime::OptimizeMode>,
    /// Control-channel override (`None` defers to the spec's `[channel]`
    /// section, falling back to the `EDN_CHANNEL` environment default).
    pub channel: Option<ChannelModel>,
}

/// The result of one scenario leg.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioOutcome {
    /// Aggregate run statistics.
    pub stats: Stats,
    /// Background datagrams loaded.
    pub datagrams: u64,
    /// Campaign steps the runtime fired (coordinated legs only).
    pub fired: Option<usize>,
    /// The online checker's verdict, when one was attached.
    pub verdict: Option<Result<(), OnlineViolation>>,
    /// The reliability layer exhausted a retransmit budget: the run kept
    /// going but gave up on at least one control message (lossy legs only).
    pub degraded: bool,
    /// Flight-recorder dump captured when the run degraded — the
    /// message-level post-mortem (`drop`, `retry_exhausted`, …).
    pub flight_dump: Option<String>,
}

impl ScenarioOutcome {
    /// The verdict as a CSV-friendly word: `correct`, a violation name,
    /// `degraded` (budget exhaustion trumps the checker: a degraded run's
    /// violations are explained, not mysterious), or `unchecked`.
    pub fn verdict_name(&self) -> &'static str {
        if self.degraded {
            return "degraded";
        }
        match &self.verdict {
            None => "unchecked",
            Some(Ok(())) => "correct",
            Some(Err(v)) => v.name(),
        }
    }
}

/// The channel model a coordinated leg runs under: an explicit
/// [`RunOptions::channel`] override, else the spec's `[channel]` section,
/// else the `EDN_CHANNEL` environment default — in every spec-derived case
/// reseeded per scenario, so different seeds see different fault patterns.
pub fn effective_channel(spec: &ScenarioSpec, opts: &RunOptions) -> ChannelModel {
    if let Some(model) = opts.channel {
        return model;
    }
    let seed = spec.seed ^ 0x4348_414e_5f45_444e; // "CHAN_EDN"
    if spec.channel.is_ideal() {
        ChannelModel::from_env().with_seed(seed)
    } else {
        spec.channel.model(seed)
    }
}

/// Runs the coordinated (NES runtime) leg of a scenario.
///
/// The effective channel model (see [`effective_channel`]) picks the
/// deployment: an ideal channel runs the bare runtime — byte-identical to
/// a build without the fault model — while a lossy channel wraps it in the
/// [`Reliable`](nes_runtime::Reliable) ack/retry layer and forces full
/// telemetry so a degraded run carries its flight-recorder post-mortem.
///
/// # Panics
///
/// Panics if `opts.check` is set and the campaign exceeds the online
/// checker's windows (compilation already bounds steps at 63, so this
/// means a checker regression).
pub fn run_coordinated(c: &CompiledScenario, opts: &RunOptions) -> ScenarioOutcome {
    let mut knobs = nes_runtime::DeployKnobs::from_env();
    if let Some(compile) = opts.compile {
        knobs.compile = compile;
    }
    if let Some(optimize) = opts.optimize {
        knobs.optimize = optimize;
    }
    let model = effective_channel(&c.spec, opts);
    if model.is_ideal() {
        let mut engine = c.engine_with(knobs).with_channel(model);
        if let Some(k) = opts.shards {
            engine = engine.with_shards(k);
        }
        let handle = opts.check.then(|| {
            nes_runtime::attach_online_checker(&mut engine, &c.nes)
                .expect("a ≤63-step campaign fits the online checker's windows")
        });
        c.apply_actions(&mut engine);
        let datagrams = c.load_traffic(&mut engine, opts.stream);
        c.inject_campaign(&mut engine);
        let result = engine.run_until(c.horizon);
        ScenarioOutcome {
            stats: result.stats,
            datagrams,
            fired: Some(result.dataplane.fired_sequence().len()),
            verdict: handle.map(|h| h.verdict()),
            degraded: false,
            flight_dump: None,
        }
    } else {
        let budget = if c.spec.channel.is_ideal() {
            nes_runtime::retry_budget_from_env()
        } else {
            c.spec.channel.retry_budget
        };
        let mut engine = c
            .reliable_engine_with(knobs, budget)
            .with_channel(model)
            .with_metrics(netsim::MetricsLevel::Full);
        if let Some(k) = opts.shards {
            engine = engine.with_shards(k);
        }
        let flight = engine.flight_recorder();
        let handle = opts.check.then(|| {
            nes_runtime::attach_online_checker(&mut engine, &c.nes)
                .expect("a ≤63-step campaign fits the online checker's windows")
        });
        c.apply_actions(&mut engine);
        let datagrams = c.load_traffic(&mut engine, opts.stream);
        c.inject_campaign(&mut engine);
        let result = engine.run_until(c.horizon);
        let degraded = result.dataplane.degraded();
        ScenarioOutcome {
            stats: result.stats,
            datagrams,
            fired: Some(result.dataplane.inner().fired_sequence().len()),
            verdict: handle.map(|h| h.verdict()),
            degraded,
            flight_dump: degraded.then(|| flight.map(|f| f.dump_json()).unwrap_or_default()),
        }
    }
}

/// Runs the uncoordinated-baseline leg, always with the online checker
/// attached (its verdict is the differential oracle's other arm). The
/// baseline has no reliability layer: under a lossy `EDN_CHANNEL` its
/// dropped pushes surface as checker violations — caught, not masked.
pub fn run_uncoordinated(c: &CompiledScenario) -> ScenarioOutcome {
    let mut engine = c.uncoordinated();
    let handle = nes_runtime::attach_online_checker(&mut engine, &c.nes)
        .expect("a ≤63-step campaign fits the online checker's windows");
    c.apply_actions(&mut engine);
    let datagrams = c.load_traffic(&mut engine, false);
    c.inject_campaign(&mut engine);
    let result = engine.run_until(c.horizon);
    ScenarioOutcome {
        stats: result.stats,
        datagrams,
        fired: None,
        verdict: Some(handle.verdict()),
        degraded: false,
        flight_dump: None,
    }
}

/// Both arms of the differential oracle for one scenario.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DifferentialOutcome {
    /// The coordinated runtime's verdict (Theorem 1: always `Ok`).
    pub coordinated: Result<(), OnlineViolation>,
    /// The uncoordinated baseline's verdict under the same scenario.
    pub uncoordinated: Result<(), OnlineViolation>,
    /// Steps the coordinated runtime fired.
    pub fired: usize,
}

/// Compiles a spec and replays it through both planes with the online
/// checker attached to each: the generalized Fig. 10 experiment.
///
/// # Errors
///
/// Propagates compilation errors; running itself cannot fail.
pub fn differential(spec: &ScenarioSpec) -> Result<DifferentialOutcome, ScenarioError> {
    let c = CompiledScenario::compile(spec)?;
    let coordinated = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
    let uncoordinated = run_uncoordinated(&c);
    Ok(DifferentialOutcome {
        coordinated: coordinated.verdict.expect("checker attached"),
        uncoordinated: uncoordinated.verdict.expect("checker attached"),
        fired: coordinated.fired.expect("coordinated legs count firings"),
    })
}

/// Header for the canonical scenario CSV (shard-count-free on purpose: the
/// row must be byte-identical at every `EDN_SHARDS`).
pub fn stats_csv_header() -> &'static str {
    "datagrams,injected,events,delivered_packets,delivered_bytes,fired,verdict,\
     drop_no_rule,drop_dead_end,drop_queue_full,drop_link_down"
}

/// One canonical CSV row for a leg's outcome.
pub fn stats_csv_row(o: &ScenarioOutcome) -> String {
    let s = &o.stats;
    format!(
        "{},{},{},{},{},{},{},{},{},{},{}",
        o.datagrams,
        s.injected,
        s.events_processed,
        s.delivered_packets,
        s.delivered_bytes,
        o.fired.map_or_else(|| "-".to_string(), |f| f.to_string()),
        o.verdict_name(),
        s.dropped[0],
        s.dropped[1],
        s.dropped[2],
        s.dropped[3],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        ActionKind, ActionSpec, CampaignSpec, ChannelSpec, ScenarioSpec, TopologySpec, WorkloadSpec,
    };
    use netsim::SimTime;

    fn flap_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "flap".to_string(),
            seed: 5,
            topology: TopologySpec::Ring(5),
            horizon: SimTime::ZERO,
            workload: WorkloadSpec { flows: 6, ..WorkloadSpec::default() },
            campaign: CampaignSpec { updates: 2, ..CampaignSpec::default() },
            channel: ChannelSpec::default(),
            actions: vec![
                ActionSpec {
                    at: SimTime::from_millis(120),
                    kind: ActionKind::FailLink { a: 2, b: 3 },
                },
                ActionSpec {
                    at: SimTime::from_millis(160),
                    kind: ActionKind::RestoreLink { a: 2, b: 3 },
                },
            ],
        }
    }

    #[test]
    fn coordinated_is_correct_and_fires_every_step() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let out = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        assert_eq!(out.verdict, Some(Ok(())), "Theorem 1 under churn");
        assert_eq!(out.fired, Some(2), "both steps fired");
        assert!(out.stats.delivered_packets > 0, "traffic flowed");
    }

    #[test]
    fn legs_agree_byte_for_byte() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let solo = run_coordinated(&c, &RunOptions::default());
        let sharded = run_coordinated(&c, &RunOptions { shards: Some(4), ..RunOptions::default() });
        let streamed =
            run_coordinated(&c, &RunOptions { check: true, stream: true, ..RunOptions::default() });
        assert_eq!(solo.stats, sharded.stats, "shards must not change a byte");
        assert_eq!(solo.stats, streamed.stats, "streaming + checking must not either");
        assert_eq!(stats_csv_row(&sharded), stats_csv_row(&solo), "canonical CSV agrees");
    }

    #[test]
    fn compile_and_optimizer_legs_agree_byte_for_byte() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let scratch = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        let delta = run_coordinated(
            &c,
            &RunOptions {
                check: true,
                compile: Some(nes_runtime::CompilePath::Delta),
                ..RunOptions::default()
            },
        );
        let optimized = run_coordinated(
            &c,
            &RunOptions {
                check: true,
                optimize: Some(nes_runtime::OptimizeMode::On),
                ..RunOptions::default()
            },
        );
        assert_eq!(stats_csv_row(&delta), stats_csv_row(&scratch), "delta compile is invisible");
        assert_eq!(stats_csv_row(&optimized), stats_csv_row(&scratch), "optimizer is invisible");
        assert_eq!(delta.verdict, Some(Ok(())));
        assert_eq!(optimized.verdict, Some(Ok(())));
    }

    #[test]
    fn differential_oracle_separates_the_planes() {
        let outcome = differential(&flap_spec()).unwrap();
        assert_eq!(outcome.coordinated, Ok(()), "coordinated plane is always correct");
        assert_eq!(outcome.fired, 2);
        // The probes race the baseline's 200 ms pushes from a causally-after
        // sender: the stale plane must get caught.
        assert!(outcome.uncoordinated.is_err(), "the baseline violates Definition 6");
    }

    /// A spec-level lossy channel routes the coordinated leg through the
    /// reliability wrapper: the verdict stays `correct` (Theorem 1 carries
    /// over the lossy channel), every step fires, and the canonical CSV is
    /// byte-identical across shard counts.
    #[test]
    fn lossy_channel_stays_correct_and_shard_invariant() {
        let mut spec = flap_spec();
        spec.channel =
            ChannelSpec { drop_pm: 60, dup_pm: 30, reorder_pm: 30, jitter_us: 40, retry_budget: 8 };
        let c = CompiledScenario::compile(&spec).unwrap();
        let checked = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        assert_eq!(checked.verdict, Some(Ok(())), "reliability preserves Definition 6 under loss");
        assert_eq!(checked.fired, Some(2), "both steps still fire");
        assert!(!checked.degraded, "a generous budget never exhausts");
        let solo = run_coordinated(&c, &RunOptions::default());
        assert_eq!(solo.stats, checked.stats, "the checker must not change a byte");
        for shards in [2u32, 4] {
            let sharded =
                run_coordinated(&c, &RunOptions { shards: Some(shards), ..RunOptions::default() });
            assert_eq!(sharded.stats, solo.stats, "{shards} shards: lossy stats diverged");
            assert_eq!(stats_csv_row(&sharded), stats_csv_row(&solo));
        }
    }

    /// An ideal `[channel]` spec (or none) must leave the bare runtime in
    /// place: explicitly overriding the channel to ideal reproduces the
    /// default leg byte for byte.
    #[test]
    fn ideal_override_is_byte_identical_to_default() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let default = run_coordinated(&c, &RunOptions::default());
        let ideal = run_coordinated(
            &c,
            &RunOptions { channel: Some(ChannelModel::ideal()), ..RunOptions::default() },
        );
        assert_eq!(ideal.stats, default.stats);
        assert_eq!(stats_csv_row(&ideal), stats_csv_row(&default));
    }

    /// A starved retransmit budget under heavy loss degrades *explicitly*:
    /// the verdict word flips to `degraded` and the outcome carries the
    /// flight-recorder dump naming the exhausted messages.
    #[test]
    fn starved_budget_degrades_explicitly_with_a_flight_dump() {
        let mut spec = flap_spec();
        spec.channel =
            ChannelSpec { drop_pm: 900, dup_pm: 0, reorder_pm: 0, jitter_us: 0, retry_budget: 0 };
        let c = CompiledScenario::compile(&spec).unwrap();
        let out = run_coordinated(&c, &RunOptions::default());
        assert!(out.degraded, "a zero budget under 90% loss must exhaust");
        assert_eq!(out.verdict_name(), "degraded");
        let dump = out.flight_dump.as_deref().expect("degraded runs carry the post-mortem");
        assert!(dump.contains("\"retry_exhausted\""), "dump names the cause: {dump}");
        assert!(dump.contains("\"drop\""), "dump shows the drops: {dump}");
    }

    #[test]
    fn verdict_names_are_csv_words() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let unchecked = run_coordinated(&c, &RunOptions::default());
        assert_eq!(unchecked.verdict_name(), "unchecked");
        let checked = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        assert_eq!(checked.verdict_name(), "correct");
        let row = stats_csv_row(&checked);
        assert_eq!(row.split(',').count(), stats_csv_header().split(',').count());
    }
}
