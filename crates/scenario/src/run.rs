//! Running compiled scenarios and reporting canonical results.
//!
//! Three legs, all fed identical traffic and campaign injections:
//!
//! * **coordinated, unchecked** — the NES runtime, shard count free (the
//!   byte-identity leg: `EDN_SHARDS` must not change a byte of the stats);
//! * **coordinated, checked** — the NES runtime with the online
//!   Definition 6 checker attached (single-threaded: the engine serializes
//!   under an observer) and optionally live streamed traffic;
//! * **uncoordinated, checked** — the Section 5.1 baseline under the same
//!   scenario, whose verdict the differential oracle compares against.
//!
//! [`differential`] packages the oracle: per Theorem 1 the coordinated
//! verdict must be `correct` on *every* scenario; the uncoordinated verdict
//! is allowed — and under probing usually observed — to be a violation.

use edn_core::OnlineViolation;
use netsim::Stats;

use crate::compile::CompiledScenario;
use crate::spec::{ScenarioError, ScenarioSpec};

/// Options for a coordinated run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunOptions {
    /// Extra shard-count override (`None` leaves `EDN_SHARDS` in charge).
    pub shards: Option<u32>,
    /// Attach the online Definition 6 checker (forces single-threaded).
    pub check: bool,
    /// Feed traffic through a live [`WorkloadSource`](netsim::WorkloadSource)
    /// instead of batch pre-scheduling (byte-identical results).
    pub stream: bool,
    /// Table-construction override (`None` leaves `EDN_COMPILE` in charge).
    pub compile: Option<nes_runtime::CompilePath>,
    /// Optimizer override (`None` leaves `EDN_OPTIMIZE` in charge).
    pub optimize: Option<nes_runtime::OptimizeMode>,
}

/// The result of one scenario leg.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioOutcome {
    /// Aggregate run statistics.
    pub stats: Stats,
    /// Background datagrams loaded.
    pub datagrams: u64,
    /// Campaign steps the runtime fired (coordinated legs only).
    pub fired: Option<usize>,
    /// The online checker's verdict, when one was attached.
    pub verdict: Option<Result<(), OnlineViolation>>,
}

impl ScenarioOutcome {
    /// The verdict as a CSV-friendly word: `correct`, a violation name, or
    /// `unchecked`.
    pub fn verdict_name(&self) -> &'static str {
        match &self.verdict {
            None => "unchecked",
            Some(Ok(())) => "correct",
            Some(Err(v)) => v.name(),
        }
    }
}

/// Runs the coordinated (NES runtime) leg of a scenario.
///
/// # Panics
///
/// Panics if `opts.check` is set and the campaign exceeds the online
/// checker's windows (compilation already bounds steps at 63, so this
/// means a checker regression).
pub fn run_coordinated(c: &CompiledScenario, opts: &RunOptions) -> ScenarioOutcome {
    let mut knobs = nes_runtime::DeployKnobs::from_env();
    if let Some(compile) = opts.compile {
        knobs.compile = compile;
    }
    if let Some(optimize) = opts.optimize {
        knobs.optimize = optimize;
    }
    let mut engine = c.engine_with(knobs);
    if let Some(k) = opts.shards {
        engine = engine.with_shards(k);
    }
    let handle = opts.check.then(|| {
        nes_runtime::attach_online_checker(&mut engine, &c.nes)
            .expect("a ≤63-step campaign fits the online checker's windows")
    });
    c.apply_actions(&mut engine);
    let datagrams = c.load_traffic(&mut engine, opts.stream);
    c.inject_campaign(&mut engine);
    let result = engine.run_until(c.horizon);
    ScenarioOutcome {
        stats: result.stats,
        datagrams,
        fired: Some(result.dataplane.fired_sequence().len()),
        verdict: handle.map(|h| h.verdict()),
    }
}

/// Runs the uncoordinated-baseline leg, always with the online checker
/// attached (its verdict is the differential oracle's other arm).
pub fn run_uncoordinated(c: &CompiledScenario) -> ScenarioOutcome {
    let mut engine = c.uncoordinated();
    let handle = nes_runtime::attach_online_checker(&mut engine, &c.nes)
        .expect("a ≤63-step campaign fits the online checker's windows");
    c.apply_actions(&mut engine);
    let datagrams = c.load_traffic(&mut engine, false);
    c.inject_campaign(&mut engine);
    let result = engine.run_until(c.horizon);
    ScenarioOutcome { stats: result.stats, datagrams, fired: None, verdict: Some(handle.verdict()) }
}

/// Both arms of the differential oracle for one scenario.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DifferentialOutcome {
    /// The coordinated runtime's verdict (Theorem 1: always `Ok`).
    pub coordinated: Result<(), OnlineViolation>,
    /// The uncoordinated baseline's verdict under the same scenario.
    pub uncoordinated: Result<(), OnlineViolation>,
    /// Steps the coordinated runtime fired.
    pub fired: usize,
}

/// Compiles a spec and replays it through both planes with the online
/// checker attached to each: the generalized Fig. 10 experiment.
///
/// # Errors
///
/// Propagates compilation errors; running itself cannot fail.
pub fn differential(spec: &ScenarioSpec) -> Result<DifferentialOutcome, ScenarioError> {
    let c = CompiledScenario::compile(spec)?;
    let coordinated = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
    let uncoordinated = run_uncoordinated(&c);
    Ok(DifferentialOutcome {
        coordinated: coordinated.verdict.expect("checker attached"),
        uncoordinated: uncoordinated.verdict.expect("checker attached"),
        fired: coordinated.fired.expect("coordinated legs count firings"),
    })
}

/// Header for the canonical scenario CSV (shard-count-free on purpose: the
/// row must be byte-identical at every `EDN_SHARDS`).
pub fn stats_csv_header() -> &'static str {
    "datagrams,injected,events,delivered_packets,delivered_bytes,fired,verdict,\
     drop_no_rule,drop_dead_end,drop_queue_full,drop_link_down"
}

/// One canonical CSV row for a leg's outcome.
pub fn stats_csv_row(o: &ScenarioOutcome) -> String {
    let s = &o.stats;
    format!(
        "{},{},{},{},{},{},{},{},{},{},{}",
        o.datagrams,
        s.injected,
        s.events_processed,
        s.delivered_packets,
        s.delivered_bytes,
        o.fired.map_or_else(|| "-".to_string(), |f| f.to_string()),
        o.verdict_name(),
        s.dropped[0],
        s.dropped[1],
        s.dropped[2],
        s.dropped[3],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        ActionKind, ActionSpec, CampaignSpec, ScenarioSpec, TopologySpec, WorkloadSpec,
    };
    use netsim::SimTime;

    fn flap_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "flap".to_string(),
            seed: 5,
            topology: TopologySpec::Ring(5),
            horizon: SimTime::ZERO,
            workload: WorkloadSpec { flows: 6, ..WorkloadSpec::default() },
            campaign: CampaignSpec { updates: 2, ..CampaignSpec::default() },
            actions: vec![
                ActionSpec {
                    at: SimTime::from_millis(120),
                    kind: ActionKind::FailLink { a: 2, b: 3 },
                },
                ActionSpec {
                    at: SimTime::from_millis(160),
                    kind: ActionKind::RestoreLink { a: 2, b: 3 },
                },
            ],
        }
    }

    #[test]
    fn coordinated_is_correct_and_fires_every_step() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let out = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        assert_eq!(out.verdict, Some(Ok(())), "Theorem 1 under churn");
        assert_eq!(out.fired, Some(2), "both steps fired");
        assert!(out.stats.delivered_packets > 0, "traffic flowed");
    }

    #[test]
    fn legs_agree_byte_for_byte() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let solo = run_coordinated(&c, &RunOptions::default());
        let sharded = run_coordinated(&c, &RunOptions { shards: Some(4), ..RunOptions::default() });
        let streamed =
            run_coordinated(&c, &RunOptions { check: true, stream: true, ..RunOptions::default() });
        assert_eq!(solo.stats, sharded.stats, "shards must not change a byte");
        assert_eq!(solo.stats, streamed.stats, "streaming + checking must not either");
        assert_eq!(stats_csv_row(&sharded), stats_csv_row(&solo), "canonical CSV agrees");
    }

    #[test]
    fn compile_and_optimizer_legs_agree_byte_for_byte() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let scratch = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        let delta = run_coordinated(
            &c,
            &RunOptions {
                check: true,
                compile: Some(nes_runtime::CompilePath::Delta),
                ..RunOptions::default()
            },
        );
        let optimized = run_coordinated(
            &c,
            &RunOptions {
                check: true,
                optimize: Some(nes_runtime::OptimizeMode::On),
                ..RunOptions::default()
            },
        );
        assert_eq!(stats_csv_row(&delta), stats_csv_row(&scratch), "delta compile is invisible");
        assert_eq!(stats_csv_row(&optimized), stats_csv_row(&scratch), "optimizer is invisible");
        assert_eq!(delta.verdict, Some(Ok(())));
        assert_eq!(optimized.verdict, Some(Ok(())));
    }

    #[test]
    fn differential_oracle_separates_the_planes() {
        let outcome = differential(&flap_spec()).unwrap();
        assert_eq!(outcome.coordinated, Ok(()), "coordinated plane is always correct");
        assert_eq!(outcome.fired, 2);
        // The probes race the baseline's 200 ms pushes from a causally-after
        // sender: the stale plane must get caught.
        assert!(outcome.uncoordinated.is_err(), "the baseline violates Definition 6");
    }

    #[test]
    fn verdict_names_are_csv_words() {
        let c = CompiledScenario::compile(&flap_spec()).unwrap();
        let unchecked = run_coordinated(&c, &RunOptions::default());
        assert_eq!(unchecked.verdict_name(), "unchecked");
        let checked = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        assert_eq!(checked.verdict_name(), "correct");
        let row = stats_csv_row(&checked);
        assert_eq!(row.split(',').count(), stats_csv_header().split(',').count());
    }
}
