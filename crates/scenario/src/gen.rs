//! Seeded fuzz-style scenario sampling.
//!
//! [`ScenarioGen`] draws random — but always *compilable* — scenarios:
//! random topology, churn (link flaps, a crash/recover pair, a latency
//! spike, a host move), and a short update campaign with probes. Replayed
//! through [`differential`](crate::differential), every sample exercises
//! the oracle: the coordinated plane must come back `correct`, the
//! uncoordinated baseline frequently gets caught.
//!
//! Sampling is deterministic: [`ScenarioGen::sample`]`(seed)` is a pure
//! function of the seed, so corpora pin by seed alone.

use netsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::compile::build_topology;
use crate::spec::{
    ActionKind, ActionSpec, CampaignSpec, ChannelSpec, ModelSpec, ScenarioSpec, TopologySpec,
    WorkloadSpec,
};
use edn_topo::TrafficPattern;

/// A deterministic random-scenario source.
pub struct ScenarioGen {
    rng: StdRng,
    count: u64,
}

impl ScenarioGen {
    /// A generator whose whole output stream is fixed by `seed`.
    pub fn new(seed: u64) -> ScenarioGen {
        ScenarioGen { rng: StdRng::seed_from_u64(seed ^ 0x4544_4e5f_4745_4e21), count: 0 }
    }

    /// The one-shot form: the first scenario of a fresh generator — a pure
    /// function of `seed`.
    pub fn sample(seed: u64) -> ScenarioSpec {
        ScenarioGen::new(seed).next_spec()
    }

    /// [`sample`](ScenarioGen::sample)'s fault-injection twin: the same
    /// scenario — identical topology, workload, campaign, and churn — but
    /// carrying a seeded lossy `[channel]` section, so every corpus seed
    /// doubles as a control-channel chaos case. A pure function of `seed`;
    /// the base sample stream is untouched.
    pub fn sample_lossy(seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioGen::sample(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4544_4e5f_4c4f_5353); // "EDN_LOSS"
        spec.channel = ChannelSpec {
            drop_pm: rng.gen_range(20u32..=80),
            dup_pm: rng.gen_range(0u32..=40),
            reorder_pm: rng.gen_range(0u32..=40),
            jitter_us: rng.gen_range(0u64..=60),
            retry_budget: 8,
        };
        spec.name = format!("{}-lossy", spec.name);
        spec
    }

    /// Draws the next random scenario. Every draw compiles: sizes, link
    /// endpoints, and host indices are sampled from the topology itself,
    /// and timing is constrained so campaign steps stay distinct and the
    /// uncoordinated controller sees triggers in order (spike latency stays
    /// below the step spacing).
    pub fn next_spec(&mut self) -> ScenarioSpec {
        let rng = &mut self.rng;
        let topology = match rng.gen_range(0u32..4) {
            0 => TopologySpec::Ring(rng.gen_range(4u64..=8)),
            1 => TopologySpec::Linear(rng.gen_range(3u64..=6)),
            2 => TopologySpec::Grid(rng.gen_range(2u64..=3), rng.gen_range(2u64..=3)),
            _ => TopologySpec::FatTree(4),
        };
        let topo = build_topology(topology);
        let hosts = topo.hosts().to_vec();
        let switches = topo.sim().switches().to_vec();
        let links = topo.sim().links().to_vec();

        let try_move = hosts.len() >= 6 && rng.gen_range(0u32..2) == 0;
        let movers = usize::from(try_move);
        let max_updates = (hosts.len() - 2 - movers).min(3);
        let updates = rng.gen_range(1..=max_updates.max(1)).min(max_updates);

        let start = rng.gen_range(50u64..=80);
        let spacing = rng.gen_range(60u64..=120);
        let campaign = CampaignSpec {
            updates,
            start: SimTime::from_millis(start),
            spacing: SimTime::from_millis(spacing),
            probe: true,
            update_delay: SimTime::from_millis(rng.gen_range(100u64..=300)),
        };
        // The window churn lands in: the campaign plus a little slack.
        let window_end = start + spacing * (updates as u64 + movers as u64 + 1);

        let mut actions = Vec::new();
        for _ in 0..rng.gen_range(0u32..=2) {
            let l = links[rng.gen_range(0..links.len())];
            let at = rng.gen_range(start..=window_end);
            let dur = rng.gen_range(20u64..=80);
            actions.push(ActionSpec {
                at: SimTime::from_millis(at),
                kind: ActionKind::FailLink { a: l.src.sw, b: l.dst.sw },
            });
            actions.push(ActionSpec {
                at: SimTime::from_millis(at + dur),
                kind: ActionKind::RestoreLink { a: l.src.sw, b: l.dst.sw },
            });
        }
        if rng.gen_range(0u32..2) == 0 {
            let sw = switches[rng.gen_range(0..switches.len())];
            let at = rng.gen_range(start..=window_end);
            actions.push(ActionSpec {
                at: SimTime::from_millis(at),
                kind: ActionKind::CrashSwitch { sw },
            });
            actions.push(ActionSpec {
                at: SimTime::from_millis(at + rng.gen_range(30u64..=100)),
                kind: ActionKind::RecoverSwitch { sw },
            });
        }
        if rng.gen_range(0u32..2) == 0 {
            let at = rng.gen_range(start..=window_end);
            actions.push(ActionSpec {
                at: SimTime::from_millis(at),
                // Below the minimum spacing (60 ms), so spiked notify
                // round-trips never reorder successive triggers.
                kind: ActionKind::LatencySpike {
                    latency: SimTime::from_millis(rng.gen_range(5u64..=40)),
                    until: SimTime::from_millis(at + rng.gen_range(50u64..=150)),
                },
            });
        }
        if try_move {
            let host = rng.gen_range(2..hosts.len());
            let attach = topo.attachment(hosts[host]).expect("generated hosts are attached").sw;
            let mut to = switches[rng.gen_range(0..switches.len())];
            while to == attach {
                to = switches[rng.gen_range(0..switches.len())];
            }
            // Strictly after the last generic step, never on the grid.
            let at = start + spacing * updates as u64 + rng.gen_range(5u64..=40);
            actions.push(ActionSpec {
                at: SimTime::from_millis(at),
                kind: ActionKind::MoveHost { host, to },
            });
        }

        let pattern = match rng.gen_range(0u32..3) {
            0 => TrafficPattern::Uniform,
            1 => TrafficPattern::Hotspot { hotspots: 2, bias_pct: 80 },
            _ => TrafficPattern::Permutation,
        };
        let model = match rng.gen_range(0u32..4) {
            0 => ModelSpec::None,
            1 => ModelSpec::Pareto,
            2 => ModelSpec::OnOff,
            _ => ModelSpec::Diurnal,
        };
        let workload = WorkloadSpec {
            pattern,
            flows: rng.gen_range(4usize..=10),
            packets_per_flow: rng.gen_range(2u64..=4),
            interval: SimTime::from_micros(rng.gen_range(300u64..=900)),
            size: if rng.gen_range(0u32..2) == 0 { 256 } else { 512 },
            start: SimTime::ZERO,
            spread: SimTime::from_millis(window_end + 100),
            model,
        };

        let seed = rng.next_u64();
        let spec = ScenarioSpec {
            name: format!("gen-{}", self.count),
            seed,
            topology,
            horizon: SimTime::ZERO,
            workload,
            campaign,
            channel: ChannelSpec::default(),
            actions,
        };
        self.count += 1;
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledScenario;
    use crate::spec::parse;

    #[test]
    fn sampling_is_a_pure_function_of_the_seed() {
        for seed in 0..8 {
            assert_eq!(ScenarioGen::sample(seed), ScenarioGen::sample(seed));
        }
        assert_ne!(ScenarioGen::sample(1), ScenarioGen::sample(2), "seeds matter");
    }

    #[test]
    fn every_sample_compiles_and_round_trips() {
        let mut gen = ScenarioGen::new(42);
        for _ in 0..24 {
            let spec = gen.next_spec();
            let text = spec.to_toml();
            assert_eq!(parse(&text).expect("samples serialize"), spec, "round trip");
            let c = CompiledScenario::compile(&spec).expect("samples compile");
            assert_eq!(c.steps.len(), c.triggers.len());
            assert!(!c.flows.is_empty());
        }
    }

    #[test]
    fn lossy_twin_only_adds_a_channel_section() {
        for seed in [0u64, 7, 31] {
            let base = ScenarioGen::sample(seed);
            let lossy = ScenarioGen::sample_lossy(seed);
            assert_eq!(lossy, ScenarioGen::sample_lossy(seed), "pure function of the seed");
            assert!(!lossy.channel.is_ideal(), "the twin is actually lossy");
            assert!(lossy.channel.drop_pm <= 1000);
            let mut stripped = lossy.clone();
            stripped.channel = base.channel;
            stripped.name.clone_from(&base.name);
            assert_eq!(stripped, base, "everything but the channel is the base sample");
            assert_eq!(parse(&lossy.to_toml()).expect("twin serializes"), lossy);
        }
    }

    #[test]
    fn successive_draws_differ() {
        let mut gen = ScenarioGen::new(7);
        let (a, b) = (gen.next_spec(), gen.next_spec());
        assert_ne!(a, b);
        assert_eq!(a.name, "gen-0");
        assert_eq!(b.name, "gen-1");
    }
}
