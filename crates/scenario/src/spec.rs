//! The scenario specification: a declarative, text-serializable description
//! of a churn run.
//!
//! Scenarios are *data*. The text form is a small TOML subset — `[table]`
//! headers, `[[action]]` array-of-tables headers, `key = value` bindings
//! with integer, string, and boolean values, and `#` comments — parsed by a
//! hand-rolled reader so the workspace stays registry-free. [`parse`] and
//! [`ScenarioSpec::to_toml`] round-trip: `parse(&spec.to_toml()) == spec`.
//!
//! Grammar (all keys optional unless marked *required*):
//!
//! ```toml
//! [scenario]
//! name = "churn"         # label for reports
//! seed = 7               # drives victim choice, workload, baseline jitter
//! topology = "ring"      # required: ring|linear|grid|torus|fat_tree
//! size = 6               # required: n for ring/linear, rows, or k
//! size2 = 4              # cols — required for grid/torus only
//! horizon_ms = 0         # 0 = run until everything settles
//!
//! [workload]
//! pattern = "uniform"    # uniform|hotspot|permutation
//! flows = 8
//! packets_per_flow = 2
//! interval_us = 500
//! size_bytes = 512
//! start_ms = 0
//! spread_ms = 10
//! model = "none"         # none|pareto|onoff|diurnal
//! hotspots = 2           # hotspot pattern only
//! bias_pct = 80          # hotspot pattern only
//!
//! [campaign]
//! updates = 2            # successive event-driven updates (≤ 63 with moves)
//! start_ms = 100
//! spacing_ms = 100
//! probe = true           # causal probes after each step (see compile)
//! update_delay_ms = 200  # uncoordinated baseline's push latency
//!
//! [channel]
//! drop_pm = 60           # control-channel loss, per mille (0..=1000)
//! dup_pm = 30            # duplication, per mille
//! reorder_pm = 30        # reordering, per mille
//! jitter_us = 40         # extra per-message delay bound, µs
//! retry_budget = 8       # retransmissions before the runtime degrades
//!
//! [[action]]
//! kind = "fail_link"     # fail_link|restore_link|crash_switch|
//! at_ms = 150            #   recover_switch|latency_spike|move_host
//! a = 1                  # bilink endpoints (switch ids)
//! b = 2
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use edn_topo::TrafficPattern;
use netsim::SimTime;

/// A failure while reading or validating a scenario spec.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScenarioError {
    /// A syntax or schema error in the spec text, with its 1-based line.
    Parse {
        /// 1-based line number of the offending text.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A well-formed spec that describes an impossible scenario.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, msg } => write!(f, "spec line {line}: {msg}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Which generated topology the scenario runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologySpec {
    /// `ring(n)`.
    Ring(u64),
    /// `linear(n)`.
    Linear(u64),
    /// `grid(rows, cols)`.
    Grid(u64, u64),
    /// `torus(rows, cols)`.
    Torus(u64, u64),
    /// `fat_tree(k)`.
    FatTree(u64),
}

impl TopologySpec {
    /// The grammar's `topology` keyword.
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Ring(_) => "ring",
            TopologySpec::Linear(_) => "linear",
            TopologySpec::Grid(..) => "grid",
            TopologySpec::Torus(..) => "torus",
            TopologySpec::FatTree(_) => "fat_tree",
        }
    }
}

/// How a flow's datagrams arrive in time — a named preset over
/// [`ArrivalModel`](edn_topo::ArrivalModel) (concrete parameters are chosen
/// by the compiler so specs stay scalar).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelSpec {
    /// Evenly spaced datagrams (no reshaping).
    None,
    /// Heavy-tailed flow sizes (Pareto, `alpha = 1.3`).
    Pareto,
    /// Bursty on/off sources.
    OnOff,
    /// Diurnal load curve.
    Diurnal,
}

impl ModelSpec {
    fn keyword(self) -> &'static str {
        match self {
            ModelSpec::None => "none",
            ModelSpec::Pareto => "pareto",
            ModelSpec::OnOff => "onoff",
            ModelSpec::Diurnal => "diurnal",
        }
    }
}

/// The scenario's background traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WorkloadSpec {
    /// Traffic matrix shape.
    pub pattern: TrafficPattern,
    /// Flow count (ignored by [`TrafficPattern::Permutation`]).
    pub flows: usize,
    /// Datagrams per flow.
    pub packets_per_flow: u64,
    /// Gap between a flow's consecutive datagrams.
    pub interval: SimTime,
    /// Datagram payload bytes.
    pub size: u32,
    /// Earliest flow start.
    pub start: SimTime,
    /// Flow starts are jittered over `[start, start + spread)`.
    pub spread: SimTime,
    /// Arrival-time reshaping.
    pub model: ModelSpec,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            pattern: TrafficPattern::Uniform,
            flows: 8,
            packets_per_flow: 2,
            interval: SimTime::from_micros(500),
            size: 512,
            start: SimTime::ZERO,
            spread: SimTime::from_millis(10),
            model: ModelSpec::None,
        }
    }
}

/// The rolling update campaign riding on the scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CampaignSpec {
    /// Number of generic (victim-unblocking) update steps.
    pub updates: usize,
    /// When the first step's trigger is injected.
    pub start: SimTime,
    /// Gap between successive step triggers.
    pub spacing: SimTime,
    /// Inject a causally-after probe for every step (the differential
    /// oracle's witness traffic).
    pub probe: bool,
    /// The uncoordinated baseline's configuration push delay.
    pub update_delay: SimTime,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            updates: 0,
            start: SimTime::from_millis(100),
            spacing: SimTime::from_millis(100),
            probe: true,
            update_delay: SimTime::from_millis(200),
        }
    }
}

/// The scenario's control-channel fault model: per-mille fault
/// probabilities applied to every controller↔switch message, plus the
/// reliability layer's retransmission budget. The default is the ideal
/// (faultless) channel, which leaves the runtime unwrapped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelSpec {
    /// Per-mille probability a control message is dropped (both directions).
    pub drop_pm: u32,
    /// Per-mille probability a control message is duplicated.
    pub dup_pm: u32,
    /// Per-mille probability a control message is reordered (extra delay).
    pub reorder_pm: u32,
    /// Uniform extra per-message delay bound, in microseconds.
    pub jitter_us: u64,
    /// Retransmissions per message before the reliability layer gives up
    /// and the run degrades.
    pub retry_budget: u32,
}

impl Default for ChannelSpec {
    fn default() -> ChannelSpec {
        ChannelSpec { drop_pm: 0, dup_pm: 0, reorder_pm: 0, jitter_us: 0, retry_budget: 8 }
    }
}

impl ChannelSpec {
    /// True when the spec describes a faultless channel (budget aside).
    pub fn is_ideal(&self) -> bool {
        self.drop_pm == 0 && self.dup_pm == 0 && self.reorder_pm == 0 && self.jitter_us == 0
    }

    /// The spec as a symmetric [`netsim::ChannelModel`] seeded by `seed`.
    pub fn model(&self, seed: u64) -> netsim::ChannelModel {
        let dir = netsim::DirModel {
            drop_pm: self.drop_pm,
            dup_pm: self.dup_pm,
            reorder_pm: self.reorder_pm,
            jitter_us: self.jitter_us,
        };
        netsim::ChannelModel { to_ctrl: dir, to_switch: dir, seed }
    }
}

/// One scripted environment action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ActionSpec {
    /// When the action takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: ActionKind,
}

/// The kinds of scripted environment actions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActionKind {
    /// Both directions of the inter-switch link `a ↔ b` go down.
    FailLink {
        /// One endpoint switch.
        a: u64,
        /// The other endpoint switch.
        b: u64,
    },
    /// Both directions of the inter-switch link `a ↔ b` come back.
    RestoreLink {
        /// One endpoint switch.
        a: u64,
        /// The other endpoint switch.
        b: u64,
    },
    /// Every inter-switch link at `sw` goes down (host links stay up).
    CrashSwitch {
        /// The crashing switch.
        sw: u64,
    },
    /// The inverse of [`ActionKind::CrashSwitch`].
    RecoverSwitch {
        /// The recovering switch.
        sw: u64,
    },
    /// Controller round-trips slow to `latency` until `until` (clamped to
    /// at least the baseline, so sharded runs stay sharded).
    LatencySpike {
        /// The spiked controller latency.
        latency: SimTime,
        /// When the latency returns to baseline.
        until: SimTime,
    },
    /// Host `host` (an index into the topology's host list) re-homes to
    /// switch `to` — deployed as one more campaign step at `at`.
    MoveHost {
        /// Index into the base topology's ascending host list (≥ 2: the
        /// first two hosts are the campaign's trigger source/sink).
        host: usize,
        /// Destination switch id.
        to: u64,
    },
}

impl ActionKind {
    /// The grammar's `kind` keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            ActionKind::FailLink { .. } => "fail_link",
            ActionKind::RestoreLink { .. } => "restore_link",
            ActionKind::CrashSwitch { .. } => "crash_switch",
            ActionKind::RecoverSwitch { .. } => "recover_switch",
            ActionKind::LatencySpike { .. } => "latency_spike",
            ActionKind::MoveHost { .. } => "move_host",
        }
    }
}

/// A complete declarative scenario.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioSpec {
    /// Label for reports and CSV headers.
    pub name: String,
    /// Master seed: victim selection, workload synthesis, and the
    /// uncoordinated baseline's push jitter all derive from it.
    pub seed: u64,
    /// The topology the scenario runs on.
    pub topology: TopologySpec,
    /// Run deadline; [`SimTime::ZERO`] means "auto" (past the last flow,
    /// step, and action, plus a second of settling).
    pub horizon: SimTime,
    /// Background traffic.
    pub workload: WorkloadSpec,
    /// The update campaign.
    pub campaign: CampaignSpec,
    /// The control-channel fault model (default: ideal).
    pub channel: ChannelSpec,
    /// Scripted environment actions, in spec order.
    pub actions: Vec<ActionSpec>,
}

impl ScenarioSpec {
    /// Renders the spec back to its text form; [`parse`] inverts this.
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "[scenario]");
        let _ = writeln!(s, "name = \"{}\"", self.name);
        let _ = writeln!(s, "seed = {}", self.seed);
        let _ = writeln!(s, "topology = \"{}\"", self.topology.kind());
        match self.topology {
            TopologySpec::Ring(n) | TopologySpec::Linear(n) | TopologySpec::FatTree(n) => {
                let _ = writeln!(s, "size = {n}");
            }
            TopologySpec::Grid(r, c) | TopologySpec::Torus(r, c) => {
                let _ = writeln!(s, "size = {r}");
                let _ = writeln!(s, "size2 = {c}");
            }
        }
        let _ = writeln!(s, "horizon_ms = {}", self.horizon.as_micros() / 1000);
        let w = &self.workload;
        let _ = writeln!(s, "\n[workload]");
        let pattern = match w.pattern {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Permutation => "permutation",
        };
        let _ = writeln!(s, "pattern = \"{pattern}\"");
        if let TrafficPattern::Hotspot { hotspots, bias_pct } = w.pattern {
            let _ = writeln!(s, "hotspots = {hotspots}");
            let _ = writeln!(s, "bias_pct = {bias_pct}");
        }
        let _ = writeln!(s, "flows = {}", w.flows);
        let _ = writeln!(s, "packets_per_flow = {}", w.packets_per_flow);
        let _ = writeln!(s, "interval_us = {}", w.interval.as_micros());
        let _ = writeln!(s, "size_bytes = {}", w.size);
        let _ = writeln!(s, "start_ms = {}", w.start.as_micros() / 1000);
        let _ = writeln!(s, "spread_ms = {}", w.spread.as_micros() / 1000);
        let _ = writeln!(s, "model = \"{}\"", w.model.keyword());
        let c = &self.campaign;
        let _ = writeln!(s, "\n[campaign]");
        let _ = writeln!(s, "updates = {}", c.updates);
        let _ = writeln!(s, "start_ms = {}", c.start.as_micros() / 1000);
        let _ = writeln!(s, "spacing_ms = {}", c.spacing.as_micros() / 1000);
        let _ = writeln!(s, "probe = {}", c.probe);
        let _ = writeln!(s, "update_delay_ms = {}", c.update_delay.as_micros() / 1000);
        if self.channel != ChannelSpec::default() {
            let ch = &self.channel;
            let _ = writeln!(s, "\n[channel]");
            let _ = writeln!(s, "drop_pm = {}", ch.drop_pm);
            let _ = writeln!(s, "dup_pm = {}", ch.dup_pm);
            let _ = writeln!(s, "reorder_pm = {}", ch.reorder_pm);
            let _ = writeln!(s, "jitter_us = {}", ch.jitter_us);
            let _ = writeln!(s, "retry_budget = {}", ch.retry_budget);
        }
        for a in &self.actions {
            let _ = writeln!(s, "\n[[action]]");
            let _ = writeln!(s, "kind = \"{}\"", a.kind.keyword());
            let _ = writeln!(s, "at_ms = {}", a.at.as_micros() / 1000);
            match a.kind {
                ActionKind::FailLink { a, b } | ActionKind::RestoreLink { a, b } => {
                    let _ = writeln!(s, "a = {a}");
                    let _ = writeln!(s, "b = {b}");
                }
                ActionKind::CrashSwitch { sw } | ActionKind::RecoverSwitch { sw } => {
                    let _ = writeln!(s, "switch = {sw}");
                }
                ActionKind::LatencySpike { latency, until } => {
                    let _ = writeln!(s, "latency_ms = {}", latency.as_micros() / 1000);
                    let _ = writeln!(s, "until_ms = {}", until.as_micros() / 1000);
                }
                ActionKind::MoveHost { host, to } => {
                    let _ = writeln!(s, "host = {host}");
                    let _ = writeln!(s, "to_switch = {to}");
                }
            }
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum Value {
    Int(u64),
    Str(String),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
        }
    }
}

/// A parsed `[section]` body: keys with their line numbers, consumed by the
/// schema pass so leftovers can be reported as unknown keys.
#[derive(Default)]
struct Table {
    header_line: usize,
    map: BTreeMap<String, (usize, Value)>,
}

impl Table {
    fn int(&mut self, key: &str) -> Result<Option<u64>, ScenarioError> {
        match self.map.remove(key) {
            None => Ok(None),
            Some((_, Value::Int(n))) => Ok(Some(n)),
            Some((line, v)) => Err(ScenarioError::Parse {
                line,
                msg: format!("`{key}` must be an integer, got a {}", v.type_name()),
            }),
        }
    }

    fn string(&mut self, key: &str) -> Result<Option<(usize, String)>, ScenarioError> {
        match self.map.remove(key) {
            None => Ok(None),
            Some((line, Value::Str(s))) => Ok(Some((line, s))),
            Some((line, v)) => Err(ScenarioError::Parse {
                line,
                msg: format!("`{key}` must be a string, got a {}", v.type_name()),
            }),
        }
    }

    fn boolean(&mut self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.map.remove(key) {
            None => Ok(None),
            Some((_, Value::Bool(b))) => Ok(Some(b)),
            Some((line, v)) => Err(ScenarioError::Parse {
                line,
                msg: format!("`{key}` must be a boolean, got a {}", v.type_name()),
            }),
        }
    }

    fn millis(&mut self, key: &str) -> Result<Option<SimTime>, ScenarioError> {
        Ok(self.int(key)?.map(SimTime::from_millis))
    }

    fn require_int(&mut self, key: &str, section: &str) -> Result<u64, ScenarioError> {
        let line = self.header_line;
        self.int(key)?.ok_or_else(|| ScenarioError::Parse {
            line,
            msg: format!("[{section}] is missing required key `{key}`"),
        })
    }

    fn finish(self, section: &str) -> Result<(), ScenarioError> {
        if let Some((key, (line, _))) = self.map.into_iter().next() {
            return Err(ScenarioError::Parse {
                line,
                msg: format!("unknown key `{key}` in [{section}]"),
            });
        }
        Ok(())
    }
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ScenarioError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        return match rest.strip_suffix('"') {
            Some(inner) if !inner.contains('"') => Ok(Value::Str(inner.to_string())),
            _ => Err(ScenarioError::Parse { line, msg: format!("malformed string `{raw}`") }),
        };
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    raw.parse::<u64>().map(Value::Int).map_err(|_| ScenarioError::Parse {
        line,
        msg: format!("`{raw}` is not an integer, string, or boolean"),
    })
}

/// Parses the text form of a scenario. See the module docs for the grammar.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] (with the offending line) on syntax
/// errors, unknown sections or keys, wrong value types, or missing required
/// keys, and [`ScenarioError::Invalid`] on structurally impossible specs
/// (degenerate topology sizes, more than 63 campaign steps, inverted
/// latency-spike windows).
pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        Scenario,
        Workload,
        Campaign,
        Channel,
        Action(usize),
    }
    let mut scenario = None::<Table>;
    let mut workload = None::<Table>;
    let mut campaign = None::<Table>;
    let mut channel = None::<Table>;
    let mut actions: Vec<Table> = Vec::new();
    let mut current = Section::None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let body = strip_comment(raw_line).trim();
        if body.is_empty() {
            continue;
        }
        if let Some(header) = body.strip_prefix("[[").and_then(|b| b.strip_suffix("]]")) {
            if header != "action" {
                return Err(ScenarioError::Parse {
                    line,
                    msg: format!("unknown array section `[[{header}]]` (only `[[action]]`)"),
                });
            }
            actions.push(Table { header_line: line, ..Table::default() });
            current = Section::Action(actions.len() - 1);
            continue;
        }
        if let Some(header) = body.strip_prefix('[').and_then(|b| b.strip_suffix(']')) {
            let slot = match header {
                "scenario" => &mut scenario,
                "workload" => &mut workload,
                "campaign" => &mut campaign,
                "channel" => &mut channel,
                _ => {
                    return Err(ScenarioError::Parse {
                        line,
                        msg: format!("unknown section `[{header}]`"),
                    })
                }
            };
            if slot.is_some() {
                return Err(ScenarioError::Parse {
                    line,
                    msg: format!("duplicate section `[{header}]`"),
                });
            }
            *slot = Some(Table { header_line: line, ..Table::default() });
            current = match header {
                "scenario" => Section::Scenario,
                "workload" => Section::Workload,
                "campaign" => Section::Campaign,
                _ => Section::Channel,
            };
            continue;
        }
        let Some((key, value)) = body.split_once('=') else {
            return Err(ScenarioError::Parse {
                line,
                msg: format!("expected `key = value`, got `{body}`"),
            });
        };
        let key = key.trim();
        if key.is_empty()
            || !key.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit())
        {
            return Err(ScenarioError::Parse { line, msg: format!("bad key `{key}`") });
        }
        let value = parse_value(value, line)?;
        let table = match current {
            Section::None => {
                return Err(ScenarioError::Parse {
                    line,
                    msg: "key binding before any section header".to_string(),
                })
            }
            Section::Scenario => scenario.as_mut().unwrap(),
            Section::Workload => workload.as_mut().unwrap(),
            Section::Campaign => campaign.as_mut().unwrap(),
            Section::Channel => channel.as_mut().unwrap(),
            Section::Action(i) => &mut actions[i],
        };
        if table.map.insert(key.to_string(), (line, value)).is_some() {
            return Err(ScenarioError::Parse { line, msg: format!("duplicate key `{key}`") });
        }
    }

    let mut scenario = scenario.ok_or(ScenarioError::Parse {
        line: 1,
        msg: "missing required section [scenario]".to_string(),
    })?;
    let name = scenario.string("name")?.map(|(_, s)| s).unwrap_or_else(|| "scenario".to_string());
    let seed = scenario.int("seed")?.unwrap_or(0);
    let (topo_line, topo_kind) = scenario.string("topology")?.ok_or(ScenarioError::Parse {
        line: scenario.header_line,
        msg: "[scenario] is missing required key `topology`".to_string(),
    })?;
    let size = scenario.require_int("size", "scenario")?;
    let topology = match topo_kind.as_str() {
        "ring" => TopologySpec::Ring(size),
        "linear" => TopologySpec::Linear(size),
        "fat_tree" => TopologySpec::FatTree(size),
        "grid" => TopologySpec::Grid(size, scenario.require_int("size2", "scenario")?),
        "torus" => TopologySpec::Torus(size, scenario.require_int("size2", "scenario")?),
        other => {
            return Err(ScenarioError::Parse {
                line: topo_line,
                msg: format!("unknown topology `{other}`"),
            })
        }
    };
    let horizon = scenario.millis("horizon_ms")?.unwrap_or(SimTime::ZERO);
    scenario.finish("scenario")?;

    let mut workload_spec = WorkloadSpec::default();
    if let Some(mut w) = workload {
        let hotspots = w.int("hotspots")?.unwrap_or(2) as usize;
        let bias_pct = w.int("bias_pct")?.unwrap_or(80) as u8;
        if let Some((line, p)) = w.string("pattern")? {
            workload_spec.pattern = match p.as_str() {
                "uniform" => TrafficPattern::Uniform,
                "hotspot" => TrafficPattern::Hotspot { hotspots, bias_pct },
                "permutation" => TrafficPattern::Permutation,
                other => {
                    return Err(ScenarioError::Parse {
                        line,
                        msg: format!("unknown traffic pattern `{other}`"),
                    })
                }
            };
        }
        if let Some(n) = w.int("flows")? {
            workload_spec.flows = n as usize;
        }
        if let Some(n) = w.int("packets_per_flow")? {
            workload_spec.packets_per_flow = n;
        }
        if let Some(n) = w.int("interval_us")? {
            workload_spec.interval = SimTime::from_micros(n);
        }
        if let Some(n) = w.int("size_bytes")? {
            workload_spec.size = n as u32;
        }
        if let Some(t) = w.millis("start_ms")? {
            workload_spec.start = t;
        }
        if let Some(t) = w.millis("spread_ms")? {
            workload_spec.spread = t;
        }
        if let Some((line, m)) = w.string("model")? {
            workload_spec.model = match m.as_str() {
                "none" => ModelSpec::None,
                "pareto" => ModelSpec::Pareto,
                "onoff" => ModelSpec::OnOff,
                "diurnal" => ModelSpec::Diurnal,
                other => {
                    return Err(ScenarioError::Parse {
                        line,
                        msg: format!("unknown arrival model `{other}`"),
                    })
                }
            };
        }
        w.finish("workload")?;
    }

    let mut campaign_spec = CampaignSpec::default();
    if let Some(mut c) = campaign {
        if let Some(n) = c.int("updates")? {
            campaign_spec.updates = n as usize;
        }
        if let Some(t) = c.millis("start_ms")? {
            campaign_spec.start = t;
        }
        if let Some(t) = c.millis("spacing_ms")? {
            campaign_spec.spacing = t;
        }
        if let Some(b) = c.boolean("probe")? {
            campaign_spec.probe = b;
        }
        if let Some(t) = c.millis("update_delay_ms")? {
            campaign_spec.update_delay = t;
        }
        c.finish("campaign")?;
    }

    let mut channel_spec = ChannelSpec::default();
    if let Some(mut ch) = channel {
        if let Some(n) = ch.int("drop_pm")? {
            channel_spec.drop_pm = n as u32;
        }
        if let Some(n) = ch.int("dup_pm")? {
            channel_spec.dup_pm = n as u32;
        }
        if let Some(n) = ch.int("reorder_pm")? {
            channel_spec.reorder_pm = n as u32;
        }
        if let Some(n) = ch.int("jitter_us")? {
            channel_spec.jitter_us = n;
        }
        if let Some(n) = ch.int("retry_budget")? {
            channel_spec.retry_budget = n as u32;
        }
        ch.finish("channel")?;
    }

    let mut action_specs = Vec::with_capacity(actions.len());
    for mut a in actions {
        let header_line = a.header_line;
        let (kind_line, kind) = a.string("kind")?.ok_or(ScenarioError::Parse {
            line: header_line,
            msg: "[[action]] is missing required key `kind`".to_string(),
        })?;
        let at = a.millis("at_ms")?.ok_or(ScenarioError::Parse {
            line: header_line,
            msg: "[[action]] is missing required key `at_ms`".to_string(),
        })?;
        let kind = match kind.as_str() {
            "fail_link" => ActionKind::FailLink {
                a: a.require_int("a", "action")?,
                b: a.require_int("b", "action")?,
            },
            "restore_link" => ActionKind::RestoreLink {
                a: a.require_int("a", "action")?,
                b: a.require_int("b", "action")?,
            },
            "crash_switch" => ActionKind::CrashSwitch { sw: a.require_int("switch", "action")? },
            "recover_switch" => {
                ActionKind::RecoverSwitch { sw: a.require_int("switch", "action")? }
            }
            "latency_spike" => ActionKind::LatencySpike {
                latency: SimTime::from_millis(a.require_int("latency_ms", "action")?),
                until: SimTime::from_millis(a.require_int("until_ms", "action")?),
            },
            "move_host" => ActionKind::MoveHost {
                host: a.require_int("host", "action")? as usize,
                to: a.require_int("to_switch", "action")?,
            },
            other => {
                return Err(ScenarioError::Parse {
                    line: kind_line,
                    msg: format!("unknown action kind `{other}`"),
                })
            }
        };
        a.finish("action")?;
        action_specs.push(ActionSpec { at, kind });
    }

    let spec = ScenarioSpec {
        name,
        seed,
        topology,
        horizon,
        workload: workload_spec,
        campaign: campaign_spec,
        channel: channel_spec,
        actions: action_specs,
    };
    validate(&spec)?;
    Ok(spec)
}

/// Structural validation shared by [`parse`] and the compiler's callers.
pub fn validate(spec: &ScenarioSpec) -> Result<(), ScenarioError> {
    match spec.topology {
        TopologySpec::Ring(n) if n < 3 => {
            return Err(ScenarioError::Invalid(format!("ring needs ≥ 3 switches, got {n}")))
        }
        TopologySpec::Linear(n) if n < 2 => {
            return Err(ScenarioError::Invalid(format!("linear needs ≥ 2 switches, got {n}")))
        }
        TopologySpec::Grid(r, c) | TopologySpec::Torus(r, c) if r < 2 || c < 2 => {
            return Err(ScenarioError::Invalid(format!("grid/torus needs ≥ 2×2, got {r}×{c}")))
        }
        TopologySpec::FatTree(k) if k < 4 || k % 2 != 0 => {
            return Err(ScenarioError::Invalid(format!("fat-tree needs even k ≥ 4, got {k}")))
        }
        _ => {}
    }
    let moves =
        spec.actions.iter().filter(|a| matches!(a.kind, ActionKind::MoveHost { .. })).count();
    if spec.campaign.updates + moves > 63 {
        return Err(ScenarioError::Invalid(format!(
            "campaigns are limited to 63 steps, got {} updates + {moves} moves",
            spec.campaign.updates
        )));
    }
    let ch = &spec.channel;
    for (key, pm) in [("drop_pm", ch.drop_pm), ("dup_pm", ch.dup_pm), ("reorder_pm", ch.reorder_pm)]
    {
        if pm > 1000 {
            return Err(ScenarioError::Invalid(format!(
                "channel {key} is a per-mille probability, got {pm} > 1000"
            )));
        }
    }
    for a in &spec.actions {
        if let ActionKind::LatencySpike { until, .. } = a.kind {
            if until <= a.at {
                return Err(ScenarioError::Invalid(format!(
                    "latency spike at {:?} must end after it starts (until {until:?})",
                    a.at
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kitchen_sink() -> ScenarioSpec {
        ScenarioSpec {
            name: "sink".to_string(),
            seed: 9,
            topology: TopologySpec::Grid(3, 2),
            horizon: SimTime::from_millis(1500),
            workload: WorkloadSpec {
                pattern: TrafficPattern::Hotspot { hotspots: 3, bias_pct: 70 },
                flows: 12,
                packets_per_flow: 3,
                interval: SimTime::from_micros(700),
                size: 256,
                start: SimTime::from_millis(5),
                spread: SimTime::from_millis(400),
                model: ModelSpec::Pareto,
            },
            campaign: CampaignSpec {
                updates: 2,
                start: SimTime::from_millis(90),
                spacing: SimTime::from_millis(110),
                probe: true,
                update_delay: SimTime::from_millis(250),
            },
            channel: ChannelSpec {
                drop_pm: 50,
                dup_pm: 20,
                reorder_pm: 10,
                jitter_us: 30,
                retry_budget: 6,
            },
            actions: vec![
                ActionSpec {
                    at: SimTime::from_millis(120),
                    kind: ActionKind::FailLink { a: 1, b: 2 },
                },
                ActionSpec {
                    at: SimTime::from_millis(200),
                    kind: ActionKind::RestoreLink { a: 1, b: 2 },
                },
                ActionSpec {
                    at: SimTime::from_millis(300),
                    kind: ActionKind::CrashSwitch { sw: 4 },
                },
                ActionSpec {
                    at: SimTime::from_millis(380),
                    kind: ActionKind::RecoverSwitch { sw: 4 },
                },
                ActionSpec {
                    at: SimTime::from_millis(400),
                    kind: ActionKind::LatencySpike {
                        latency: SimTime::from_millis(20),
                        until: SimTime::from_millis(500),
                    },
                },
                ActionSpec {
                    at: SimTime::from_millis(600),
                    kind: ActionKind::MoveHost { host: 3, to: 5 },
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_text() {
        let spec = kitchen_sink();
        let text = spec.to_toml();
        assert_eq!(parse(&text).expect("rendered specs parse"), spec);
    }

    #[test]
    fn defaults_fill_missing_sections() {
        let spec = parse("[scenario]\ntopology = \"ring\"\nsize = 4\n").unwrap();
        assert_eq!(spec.name, "scenario");
        assert_eq!(spec.workload, WorkloadSpec::default());
        assert_eq!(spec.campaign, CampaignSpec::default());
        assert_eq!(spec.channel, ChannelSpec::default());
        assert!(spec.channel.is_ideal());
        assert!(spec.actions.is_empty());
        assert_eq!(spec.horizon, SimTime::ZERO);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a comment\n[scenario]  # trailing\nname = \"x # not a comment\"\ntopology = \"linear\"\nsize = 3\n";
        let spec = parse(text).unwrap();
        assert_eq!(spec.name, "x # not a comment");
        assert_eq!(spec.topology, TopologySpec::Linear(3));
    }

    #[test]
    fn rejects_unknown_keys_sections_and_kinds() {
        let base = "[scenario]\ntopology = \"ring\"\nsize = 4\n";
        for (text, needle) in [
            (format!("{base}bogus = 1\n"), "unknown key"),
            (format!("{base}[mystery]\n"), "unknown section"),
            (format!("{base}[[mystery]]\n"), "unknown array section"),
            (format!("{base}[[action]]\nkind = \"melt\"\nat_ms = 1\n"), "unknown action kind"),
            (format!("{base}[[action]]\nat_ms = 1\n"), "missing required key `kind`"),
            ("[scenario]\nsize = 4\n".to_string(), "required key `topology`"),
            (format!("{base}seed = \"seven\"\n"), "must be an integer"),
            (format!("{base}[scenario]\n"), "duplicate section"),
            ("flows = 1\n".to_string(), "before any section"),
        ] {
            let err = parse(&text).expect_err(&text).to_string();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn validates_structure() {
        for (text, needle) in [
            ("[scenario]\ntopology = \"ring\"\nsize = 2\n", "ring needs"),
            ("[scenario]\ntopology = \"fat_tree\"\nsize = 3\n", "fat-tree needs"),
            (
                "[scenario]\ntopology = \"ring\"\nsize = 4\n[campaign]\nupdates = 64\n",
                "limited to 63",
            ),
            (
                "[scenario]\ntopology = \"ring\"\nsize = 4\n[[action]]\nkind = \"latency_spike\"\nat_ms = 10\nlatency_ms = 5\nuntil_ms = 10\n",
                "must end after",
            ),
            (
                "[scenario]\ntopology = \"ring\"\nsize = 4\n[channel]\ndrop_pm = 1001\n",
                "per-mille",
            ),
        ] {
            let err = parse(text).expect_err(text).to_string();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }
}
