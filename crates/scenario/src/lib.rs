//! # edn-scenario — declarative, seeded churn scenarios
//!
//! The paper's case studies fire one event-driven update on a quiet
//! network. This crate scripts the messy version: timelines of link
//! failures *and recoveries*, switch crash-and-recover, controller latency
//! spikes, host mobility, and campaigns of successive updates — all against
//! live streamed traffic, all seeded-deterministic.
//!
//! Scenarios are **data**: a TOML-subset text form ([`parse`] /
//! [`ScenarioSpec::to_toml`], hand-rolled — no registry dependencies)
//! compiled by [`CompiledScenario::compile`] into a run topology (with
//! mobile twins for moved hosts), a chain-NES update campaign, engine
//! action timelines, and background traffic. [`run_coordinated`] /
//! [`run_uncoordinated`] replay a compiled scenario through the paper's
//! runtime and the Section 5.1 baseline; [`differential`] pairs them with
//! the online Definition 6 checker as a differential oracle — the
//! generalized Fig. 10 experiment. [`ScenarioGen`] samples random
//! compilable scenarios for fuzzing, pinned by seed.
//!
//! ```
//! use edn_scenario::{differential, parse};
//!
//! let spec = parse(
//!     "[scenario]\n\
//!      topology = \"ring\"\n\
//!      size = 4\n\
//!      seed = 3\n\
//!      [workload]\n\
//!      flows = 4\n\
//!      [campaign]\n\
//!      updates = 1\n\
//!      [[action]]\n\
//!      kind = \"fail_link\"\n\
//!      at_ms = 120\n\
//!      a = 2\n\
//!      b = 3\n\
//!      [[action]]\n\
//!      kind = \"restore_link\"\n\
//!      at_ms = 160\n\
//!      a = 2\n\
//!      b = 3\n",
//! )
//! .unwrap();
//! let outcome = differential(&spec).unwrap();
//! assert_eq!(outcome.coordinated, Ok(()), "Theorem 1 survives churn");
//! ```

#![warn(missing_docs)]

mod compile;
mod gen;
mod run;
mod spec;

pub use compile::{
    probe_delay, CompiledScenario, EngineAction, PlannedStep, StepTarget, PROBE_FLOW_BASE,
};
pub use gen::ScenarioGen;
pub use run::{
    differential, effective_channel, run_coordinated, run_uncoordinated, stats_csv_header,
    stats_csv_row, DifferentialOutcome, RunOptions, ScenarioOutcome,
};
pub use spec::{
    parse, validate, ActionKind, ActionSpec, CampaignSpec, ChannelSpec, ModelSpec, ScenarioError,
    ScenarioSpec, TopologySpec, WorkloadSpec,
};
