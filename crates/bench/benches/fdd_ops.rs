//! FDD micro-benchmarks: predicate compilation, union/sequence/star, and
//! flow-table extraction on policies shaped like the case studies.

use criterion::{criterion_group, criterion_main, Criterion};
use netkat::{compile_fdd, compile_local, FddBuilder, Field, Policy, Pred};
use std::hint::black_box;

fn clauses(n: u64) -> Policy {
    Policy::union_all((0..n).map(|i| {
        Policy::filter(Pred::port(i % 4).and(Pred::test(Field::IpDst, 100 + i)))
            .seq(Policy::modify(Field::Port, i % 8))
    }))
}

fn bench_fdd(c: &mut Criterion) {
    let mut g = c.benchmark_group("fdd_ops");
    g.bench_function("compile_16_clauses", |b| {
        let p = clauses(16);
        b.iter(|| compile_local(black_box(&p)).unwrap())
    });
    g.bench_function("compile_64_clauses", |b| {
        let p = clauses(64);
        b.iter(|| compile_local(black_box(&p)).unwrap())
    });
    g.bench_function("union_of_compiled", |b| {
        let p = clauses(16);
        let q = clauses(24);
        b.iter(|| {
            let mut builder = FddBuilder::new();
            let dp = compile_fdd(&mut builder, &p).unwrap();
            let dq = compile_fdd(&mut builder, &q).unwrap();
            black_box(builder.union(dp, dq))
        })
    });
    g.bench_function("star_fixpoint", |b| {
        let step = Policy::filter(Pred::port(1))
            .seq(Policy::modify(Field::Port, 2))
            .union(Policy::filter(Pred::port(2)).seq(Policy::modify(Field::Port, 3)))
            .union(Policy::filter(Pred::port(3)).seq(Policy::modify(Field::Port, 4)))
            .star();
        b.iter(|| compile_local(black_box(&step)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_fdd);
criterion_main!(benches);
