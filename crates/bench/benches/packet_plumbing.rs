//! Microbench: the per-hop packet plumbing this repo's arena/queue rework
//! targets, in isolation and end to end.
//!
//! * `queue/*` — the future-event set alone, heap vs calendar, driven with
//!   a simulation-shaped push/pop pattern (pop one, schedule a couple at
//!   `now + latency`).
//! * `arena/*` — steady-state arena operations (interning an already-seen
//!   packet, relocating one) against the owned baseline (clone + mutate).
//! * `hop/*` — a ring-16 NES simulation per event, across
//!   `{owned, arena} × {full, stats}`: the end-to-end cost the fig18 sweep
//!   tracks, without its topology-construction noise.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edn_apps::ring::{host, Ring};
use edn_core::TraceMode;
use nes_runtime::nes_engine_with_path;
use netkat::{Loc, LookupPath, Packet, PacketArena};
use netsim::traffic::udp_packet;
use netsim::{PacketPath, QueueKind, SimParams, SimTime, SinkHosts};
use std::hint::black_box;

/// Pending-set churn shaped like the simulator's: a standing population of
/// keys; each pop schedules followers a link latency ahead.
fn queue_churn(kind: QueueKind, keys: u64) -> u64 {
    // The queue types are crate-private; drive them through an engine with
    // a pass-through plane so the measured loop is dominated by queue ops.
    struct Fwd;
    impl netsim::DataPlane for Fwd {
        fn process(
            &mut self,
            _: u64,
            pt: u64,
            pk: Packet,
            _: bool,
            _: SimTime,
        ) -> netsim::StepResult {
            netsim::StepResult::forward(if pt == 1 { 2 } else { 1 }, pk)
        }
        fn on_notify(
            &mut self,
            _: netsim::CtrlMsg,
            _: SimTime,
        ) -> Vec<(SimTime, u64, netsim::CtrlMsg)> {
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: netsim::CtrlMsg, _: SimTime) {}
    }
    let topo = netsim::SimTopology::new([1, 2])
        .host(100, Loc::new(1, 0))
        .host(200, Loc::new(2, 0))
        .bilink(Loc::new(1, 1), Loc::new(2, 1), SimTime::from_micros(50), None)
        .bilink(Loc::new(1, 2), Loc::new(2, 2), SimTime::from_micros(170), None);
    let mut engine = netsim::Engine::new(topo, SimParams::default(), Fwd, Box::new(SinkHosts))
        .with_queue(kind)
        .with_trace_mode(TraceMode::StatsOnly)
        .with_packet_path(PacketPath::Arena);
    engine
        .inject_batch((0..keys).map(|i| (SimTime::from_micros(i * 7), 100, Packet::new(), 64u32)));
    engine.run(SimTime::from_millis(40));
    let result = engine.finish();
    result.stats.events_processed
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    g.sample_size(10);
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        g.bench_function(format!("churn_{}", kind.label()), |b| {
            b.iter(|| black_box(queue_churn(kind, 512)))
        });
    }
    g.finish();
}

fn bench_arena(c: &mut Criterion) {
    let mut g = c.benchmark_group("arena");
    const OPS: u64 = 1024;
    g.throughput(Throughput::Elements(OPS));
    let base: Vec<Packet> = (0..OPS).map(|i| udp_packet(1, 2, 7, i)).collect();
    g.bench_function("intern_ref_steady_state", |b| {
        let mut arena = PacketArena::new();
        for pk in &base {
            arena.intern_ref(pk);
        }
        b.iter(|| {
            for pk in &base {
                black_box(arena.intern_ref(pk));
            }
        })
    });
    g.bench_function("set_loc_steady_state", |b| {
        let mut arena = PacketArena::new();
        let ids: Vec<_> = base.iter().map(|pk| arena.intern_ref(pk)).collect();
        for &id in &ids {
            arena.set_loc(id, Loc::new(3, 1));
        }
        b.iter(|| {
            for &id in &ids {
                black_box(arena.set_loc(id, Loc::new(3, 1)));
            }
        })
    });
    g.bench_function("owned_clone_set_loc", |b| {
        // The owned-path equivalent of a per-hop move: clone + relocate.
        b.iter(|| {
            for pk in &base {
                let mut moved = pk.clone();
                moved.set_loc(Loc::new(3, 1));
                black_box(&moved);
            }
        })
    });
    g.finish();
}

/// A ring-16 NES run: every host sends 8 datagrams to the opposite host.
fn ring_events(path: PacketPath, mode: TraceMode, queue: QueueKind) -> (u64, u64) {
    let ring = Ring::new(8); // 16 switches
    let n = ring.switch_count();
    let topo = ring.sim_topology(SimTime::from_micros(50), None);
    let mut engine = nes_engine_with_path(
        ring.nes(),
        topo,
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        LookupPath::Indexed,
    )
    .with_queue(queue)
    .with_trace_mode(mode)
    .with_packet_path(path);
    let mut batch = Vec::new();
    for i in 1..=n {
        let opposite = (i + ring.diameter - 1) % n + 1;
        for seq in 0..8u64 {
            batch.push((
                SimTime::from_millis(1 + i + 3 * seq),
                host(i),
                udp_packet(host(i), host(opposite), i, seq),
                512,
            ));
        }
    }
    engine.inject_batch(batch);
    engine.run(SimTime::from_secs(5));
    let result = engine.finish();
    (result.stats.events_processed, result.stats.deliveries.len() as u64)
}

fn bench_hop(c: &mut Criterion) {
    let (events, deliveries) =
        ring_events(PacketPath::Arena, TraceMode::StatsOnly, QueueKind::Calendar);
    assert!(deliveries > 0);
    let mut g = c.benchmark_group("hop");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    for (label, path, mode) in [
        ("owned_full", PacketPath::Owned, TraceMode::Full),
        ("arena_full", PacketPath::Arena, TraceMode::Full),
        ("arena_stats", PacketPath::Arena, TraceMode::StatsOnly),
    ] {
        g.bench_function(format!("ring16_{label}"), |b| {
            b.iter(|| black_box(ring_events(path, mode, QueueKind::Calendar)))
        });
    }
    g.bench_function("ring16_arena_stats_heap", |b| {
        b.iter(|| black_box(ring_events(PacketPath::Arena, TraceMode::StatsOnly, QueueKind::Heap)))
    });
    g.finish();
}

criterion_group!(benches, bench_queue, bench_arena, bench_hop);
criterion_main!(benches);
