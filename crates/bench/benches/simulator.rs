//! Simulator throughput: packets pushed end-to-end per second through the
//! NES runtime on the firewall and a diameter-4 ring.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edn_apps::ring::Ring;
use edn_apps::{firewall, sim_topology, H1, H4};
use nes_runtime::nes_engine;
use netsim::traffic::{schedule_pings, Ping, ScenarioHosts};
use netsim::{SimParams, SimTime};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    const PINGS: u64 = 200;
    g.throughput(Throughput::Elements(PINGS));
    g.bench_function("firewall_200_pings_end_to_end", |b| {
        b.iter(|| {
            let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
            let mut engine = nes_engine(
                firewall::nes(),
                topo,
                SimParams::default(),
                false,
                Box::new(ScenarioHosts::new()),
            );
            let pings: Vec<Ping> = (0..PINGS)
                .map(|i| Ping { time: SimTime::from_millis(i), src: H1, dst: H4, id: i })
                .collect();
            schedule_pings(&mut engine, &pings);
            black_box(engine.run_until(SimTime::from_secs(10)).stats.deliveries.len())
        })
    });
    g.bench_function("ring4_200_pings_end_to_end", |b| {
        let ring = Ring::new(4);
        b.iter(|| {
            let topo = ring.sim_topology(SimTime::from_micros(100), None);
            let mut engine = nes_engine(
                ring.nes(),
                topo,
                SimParams::default(),
                false,
                Box::new(ScenarioHosts::new()),
            );
            let pings: Vec<Ping> = (0..PINGS)
                .map(|i| Ping {
                    time: SimTime::from_millis(i),
                    src: ring.h1(),
                    dst: ring.h2(),
                    id: i,
                })
                .collect();
            schedule_pings(&mut engine, &pings);
            black_box(engine.run_until(SimTime::from_secs(10)).stats.deliveries.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
