//! Rule-sharing heuristic performance on the Fig. 17 instance sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use rule_optimizer::{optimize, optimize_in_order, random_configs};
use std::hint::black_box;

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    for (count, rules, universe) in [(16usize, 10usize, 20usize), (64, 20, 40)] {
        let configs = random_configs(count, rules, universe, 42);
        g.bench_function(format!("{count}x{rules}_u{universe}"), |b| {
            b.iter(|| black_box(optimize(black_box(&configs))).optimized_count())
        });
    }
    let ablate = random_configs(64, 20, 40, 42);
    g.bench_function("64x20_u40_in_order_baseline", |b| {
        b.iter(|| black_box(optimize_in_order(black_box(&ablate))).optimized_count())
    });
    let compiled = nes_runtime::CompiledNes::compile(edn_apps::bandwidth_cap::nes(10));
    let app_configs = compiled.config_rule_sets();
    g.bench_function("bandwidth_cap_real_rules", |b| {
        b.iter(|| black_box(optimize(black_box(&app_configs))).optimized_count())
    });
    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
