//! Correctness-checker performance: happens-before construction plus the
//! Definition 6 search on recorded firewall traces.

use criterion::{criterion_group, criterion_main, Criterion};
use edn_apps::{firewall, sim_topology, H1, H4};
use edn_core::HappensBefore;
use nes_runtime::{nes_engine, verify_nes_run};
use netsim::traffic::{schedule_pings, Ping, ScenarioHosts};
use netsim::{SimParams, SimTime};
use std::hint::black_box;

fn bench_checker(c: &mut Criterion) {
    // Record one reasonably long trace.
    let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
    let mut engine = nes_engine(
        firewall::nes(),
        topo,
        SimParams::default(),
        false,
        Box::new(ScenarioHosts::new()),
    );
    let pings: Vec<Ping> = (0..100)
        .map(|i| Ping {
            time: SimTime::from_millis(10 * i),
            src: if i % 3 == 0 { H1 } else { H4 },
            dst: if i % 3 == 0 { H4 } else { H1 },
            id: i,
        })
        .collect();
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(10));
    assert!(verify_nes_run(&result).is_ok());

    let mut g = c.benchmark_group("checker");
    g.sample_size(30);
    g.bench_function("happens_before", |b| {
        b.iter(|| black_box(HappensBefore::of(black_box(&result.trace))))
    });
    g.bench_function("definition6_full_check", |b| {
        b.iter(|| verify_nes_run(black_box(&result)).is_ok())
    });
    g.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
