//! Compiler performance: full pipeline (parse -> project -> extract -> ETS
//! -> NES -> tag assignment) per application, the timing column of the
//! Section 5.1 table.

use criterion::{criterion_group, criterion_main, Criterion};
use nes_runtime::CompiledNes;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_apps");
    g.sample_size(20);
    g.bench_function("firewall", |b| {
        b.iter(|| CompiledNes::compile(black_box(edn_apps::firewall::nes())))
    });
    g.bench_function("learning_switch", |b| {
        b.iter(|| CompiledNes::compile(black_box(edn_apps::learning::nes())))
    });
    g.bench_function("authentication", |b| {
        b.iter(|| CompiledNes::compile(black_box(edn_apps::authentication::nes())))
    });
    g.bench_function("bandwidth_cap_10", |b| {
        b.iter(|| CompiledNes::compile(black_box(edn_apps::bandwidth_cap::nes(10))))
    });
    g.bench_function("ids", |b| b.iter(|| CompiledNes::compile(black_box(edn_apps::ids::nes()))));
    g.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
