//! Microbench: linear first-match scan vs the compiled lookup index, on
//! tables shaped like the ones the NES compiler installs (tag-guarded
//! `tag, ip_dst → port` runs with a trailing wildcard drop), at 16, 128,
//! and 1024 rules.
//!
//! Each iteration resolves [`PACKETS_PER_ITER`] packets cycling through
//! hits on every priority level plus guaranteed misses, so both paths do
//! identical semantic work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netkat::{Action, ActionSet, Field, FlowTable, Match, Packet, Rule};

const PACKETS_PER_ITER: u64 = 256;
const TAGS: u64 = 2;

/// A tag-guarded forwarding table with `n` rules: `n / TAGS` destinations
/// per tag, plus a trailing wildcard drop.
fn guarded_table(n: u64) -> FlowTable {
    let per_tag = n / TAGS;
    let mut rules = Vec::new();
    for tag in 0..TAGS {
        for dst in 0..per_tag {
            rules.push(Rule::new(
                Match::new().with(Field::Tag, tag).with(Field::IpDst, dst),
                ActionSet::single(Action::assign(Field::Port, dst % 8)),
            ));
        }
    }
    rules.push(Rule::drop_all());
    FlowTable::from_rules(rules)
}

/// Packets spread over every priority level of the table, with one in
/// eight missing entirely (falling through to the wildcard drop).
fn packets(n: u64) -> Vec<Packet> {
    (0..PACKETS_PER_ITER)
        .map(|i| {
            let dst = if i % 8 == 7 { n + i } else { (i * 7) % (n / TAGS) };
            Packet::new().with(Field::Tag, i % TAGS).with(Field::IpDst, dst).with(Field::Port, 1)
        })
        .collect()
}

fn bench_flow_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_lookup");
    group.sample_size(30).throughput(Throughput::Elements(PACKETS_PER_ITER));
    for n in [16u64, 128, 1024] {
        let table = guarded_table(n);
        let compiled = table.compile();
        let pks = packets(n);
        group.bench_function(format!("linear/{n}"), |b| {
            b.iter(|| pks.iter().map(|pk| table.apply(pk).len()).sum::<usize>())
        });
        group.bench_function(format!("indexed/{n}"), |b| {
            b.iter(|| pks.iter().map(|pk| compiled.apply(pk).len()).sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_lookup);
criterion_main!(benches);
