//! # edn-bench
//!
//! Shared harness code for regenerating every table and figure of the
//! paper's Section 5. The `src/bin/fig*.rs` binaries print the data series;
//! the Criterion benches in `benches/` measure compiler, simulator,
//! optimizer, and checker performance.

#![warn(missing_docs)]

pub mod scale;

use edn_core::NetworkEventStructure;
use nes_runtime::{nes_engine, uncoordinated_engine, NesDataPlane, UncoordDataPlane};
use netsim::traffic::{ping_outcomes, schedule_pings, Ping, PingOutcome, ScenarioHosts};
use netsim::{RunResult, SimParams, SimTime};
use stateful_netkat::NetworkSpec;

/// One row of a Fig. 11–15 timeline: a ping and whether it was answered.
#[derive(Clone, Copy, Debug)]
pub struct TimelineRow {
    /// The probe.
    pub ping: Ping,
    /// Answered?
    pub ok: bool,
}

/// Runs a ping timeline on the event-driven consistent runtime.
pub fn run_correct(
    nes: NetworkEventStructure,
    spec: &NetworkSpec,
    pings: &[Ping],
    horizon: SimTime,
) -> (Vec<TimelineRow>, RunResult<NesDataPlane>) {
    let topo = edn_apps::sim_topology(spec, SimTime::from_micros(50), None);
    let mut engine =
        nes_engine(nes, topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
    schedule_pings(&mut engine, pings);
    let result = engine.run_until(horizon);
    (rows(pings, &ping_outcomes(pings, &result.stats)), result)
}

/// Runs a ping timeline on the uncoordinated baseline with the given
/// controller delay and seed.
pub fn run_uncoordinated(
    nes: NetworkEventStructure,
    spec: &NetworkSpec,
    pings: &[Ping],
    delay: SimTime,
    seed: u64,
    horizon: SimTime,
) -> (Vec<TimelineRow>, RunResult<UncoordDataPlane>) {
    let topo = edn_apps::sim_topology(spec, SimTime::from_micros(50), None);
    let mut engine = uncoordinated_engine(
        nes,
        topo,
        SimParams::default(),
        delay,
        seed,
        Box::new(ScenarioHosts::new()),
    );
    schedule_pings(&mut engine, pings);
    let result = engine.run_until(horizon);
    (rows(pings, &ping_outcomes(pings, &result.stats)), result)
}

fn rows(pings: &[Ping], outcomes: &[PingOutcome]) -> Vec<TimelineRow> {
    pings
        .iter()
        .zip(outcomes)
        .map(|(&ping, o)| TimelineRow { ping, ok: o.replied.is_some() })
        .collect()
}

/// Pretty-prints a timeline with host names resolved via `name`.
pub fn print_timeline(label: &str, rows: &[TimelineRow], name: impl Fn(u64) -> String) {
    println!("{label}");
    println!("  {:>10}  {:<8}  result", "time", "probe");
    for r in rows {
        println!(
            "  {:>10}  {:<8}  {}",
            r.ping.time.to_string(),
            format!("{}->{}", name(r.ping.src), name(r.ping.dst)),
            if r.ok { "reply" } else { "LOST" }
        );
    }
}

/// Reads an integer parameter from the environment, falling back to
/// `default` — the mechanism the `fig*` binaries use for reduced CI smoke
/// sweeps.
///
/// # Panics
///
/// Panics if the variable is set but not an integer.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

/// Reads a comma-separated integer list from the environment, falling back
/// to `default`.
///
/// # Panics
///
/// Panics if the variable is set but not a comma-separated integer list.
pub fn env_list(name: &str, default: &[u64]) -> Vec<u64> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} must be comma-separated integers"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Resolves the standard `H1..H4` host ids to names.
pub fn host_name(h: u64) -> String {
    match h {
        101 => "H1".to_string(),
        102 => "H2".to_string(),
        103 => "H3".to_string(),
        104 => "H4".to_string(),
        other => format!("h{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_apps::{firewall, H1, H4};

    #[test]
    fn harness_runs_both_strategies() {
        let pings = vec![
            Ping { time: SimTime::from_millis(10), src: H1, dst: H4, id: 1 },
            Ping { time: SimTime::from_millis(50), src: H4, dst: H1, id: 2 },
        ];
        let (rows, _) =
            run_correct(firewall::nes(), &firewall::spec(), &pings, SimTime::from_secs(2));
        assert_eq!(rows.len(), 2);
        assert!(rows[0].ok && rows[1].ok, "correct runtime answers both");
        let (rows, _) = run_uncoordinated(
            firewall::nes(),
            &firewall::spec(),
            &pings,
            SimTime::from_millis(500),
            1,
            SimTime::from_secs(2),
        );
        assert!(!rows[0].ok, "even the trigger's own reply races the stale config");
        assert!(!rows[1].ok, "reverse probe races the stale config");
    }

    #[test]
    fn names() {
        assert_eq!(host_name(101), "H1");
        assert_eq!(host_name(999), "h999");
    }
}
