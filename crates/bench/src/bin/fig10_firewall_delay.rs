//! Figure 10: the stateful firewall under the uncoordinated strategy —
//! total incorrectly-dropped packets as a function of the controller's
//! update delay (0–5000 ms), several seeded runs per point, against the
//! always-zero line of the correct implementation.
//!
//! Run with: `cargo run --release -p edn-bench --bin fig10_firewall_delay`

use edn_apps::{firewall, H1, H4};
use edn_bench::{run_correct, run_uncoordinated};
use netsim::traffic::Ping;
use netsim::SimTime;

const RUNS_PER_POINT: u64 = 10;

/// The Fig. 10 workload: H1 opens the connection, then H4 sends replies at
/// a steady rate. Every lost probe is an incorrect drop: after the event at
/// switch 4, event-driven consistency requires the reverse path to be open.
fn workload() -> Vec<Ping> {
    let mut pings = vec![Ping { time: SimTime::from_millis(10), src: H1, dst: H4, id: 0 }];
    for i in 0..60 {
        pings.push(Ping {
            time: SimTime::from_millis(100 * i + 50),
            src: H4,
            dst: H1,
            id: i + 1,
        });
    }
    pings
}

fn main() {
    println!("# Fig. 10: incorrectly-dropped packets vs controller delay");
    println!("# workload: trigger at 10ms, then H4->H1 probes every 100ms for 6s");
    println!("# {RUNS_PER_POINT} seeded runs per point");
    println!("delay_ms,incorrect_total,correct_total");
    let pings = workload();
    for delay_ms in (0..=5000).step_by(250) {
        let mut incorrect_total = 0usize;
        for seed in 0..RUNS_PER_POINT {
            let (rows, _) = run_uncoordinated(
                firewall::nes(),
                &firewall::spec(),
                &pings,
                SimTime::from_millis(delay_ms),
                seed,
                SimTime::from_secs(20),
            );
            incorrect_total += rows.iter().filter(|r| !r.ok).count();
        }
        // The correct implementation, same workload (any seed: deterministic).
        let (rows, result) =
            run_correct(firewall::nes(), &firewall::spec(), &pings, SimTime::from_secs(20));
        let correct_total = rows.iter().filter(|r| !r.ok).count();
        nes_runtime::verify_nes_run(&result).expect("correct runs verify");
        println!("{delay_ms},{incorrect_total},{correct_total}");
    }
    println!("# shape check: even at delay 0 the uncoordinated strategy drops >= 1 packet");
}
