//! Figure 10: the stateful firewall under the uncoordinated strategy —
//! total incorrectly-dropped packets as a function of the controller's
//! update delay (0–5000 ms), several seeded runs per point, against the
//! always-zero line of the correct implementation.
//!
//! Run with: `cargo run --release -p edn-bench --bin fig10_firewall_delay`
//!
//! For quick smoke runs (CI), the sweep can be reduced via environment
//! variables: `FIG10_MAX_DELAY_MS` caps the swept delay and
//! `FIG10_RUNS_PER_POINT` overrides the number of seeded runs per point.

use edn_apps::{firewall, H1, H4};
use edn_bench::{env_u64, run_correct, run_uncoordinated};
use netsim::traffic::Ping;
use netsim::SimTime;

/// The Fig. 10 workload: H1 opens the connection, then H4 sends replies at
/// a steady rate. Every lost probe is an incorrect drop: after the event at
/// switch 4, event-driven consistency requires the reverse path to be open.
fn workload() -> Vec<Ping> {
    let mut pings = vec![Ping { time: SimTime::from_millis(10), src: H1, dst: H4, id: 0 }];
    for i in 0..60 {
        pings.push(Ping { time: SimTime::from_millis(100 * i + 50), src: H4, dst: H1, id: i + 1 });
    }
    pings
}

fn main() {
    let max_delay_ms = env_u64("FIG10_MAX_DELAY_MS", 5000);
    let runs_per_point = env_u64("FIG10_RUNS_PER_POINT", 10);
    println!("# Fig. 10: incorrectly-dropped packets vs controller delay");
    println!("# workload: trigger at 10ms, then H4->H1 probes every 100ms for 6s");
    println!("# {runs_per_point} seeded runs per point, delays 0..={max_delay_ms} ms");
    println!("delay_ms,incorrect_total,correct_total");
    let pings = workload();
    // The correct implementation is delay-independent and deterministic:
    // one run covers every point of the sweep.
    let (rows, result) =
        run_correct(firewall::nes(), &firewall::spec(), &pings, SimTime::from_secs(20));
    let correct_total = rows.iter().filter(|r| !r.ok).count();
    nes_runtime::verify_nes_run(&result).expect("correct runs verify");
    for delay_ms in (0..=max_delay_ms).step_by(250) {
        let mut incorrect_total = 0usize;
        for seed in 0..runs_per_point {
            let (rows, _) = run_uncoordinated(
                firewall::nes(),
                &firewall::spec(),
                &pings,
                SimTime::from_millis(delay_ms),
                seed,
                SimTime::from_secs(20),
            );
            incorrect_total += rows.iter().filter(|r| !r.ok).count();
        }
        println!("{delay_ms},{incorrect_total},{correct_total}");
    }
    println!("# shape check: even at delay 0 the uncoordinated strategy drops >= 1 packet");
}
