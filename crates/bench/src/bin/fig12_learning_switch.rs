//! Figure 12: the learning switch — packets delivered to H1 vs flooded to
//! H2 over time, correct (a) vs uncoordinated (b).
//!
//! Run with: `cargo run --release -p edn-bench --bin fig12_learning_switch`

use edn_apps::{learning, sim_topology, H1, H2, H4};
use nes_runtime::{nes_engine, uncoordinated_engine, verify_nes_run};
use netsim::traffic::{schedule_pings, Ping, ScenarioHosts, PROTO_PING_REQUEST};
use netsim::{SimParams, SimTime, Stats};

fn workload() -> Vec<Ping> {
    (0..9).map(|i| Ping { time: SimTime::from_secs(i + 1), src: H4, dst: H1, id: i }).collect()
}

fn per_second_counts(stats: &Stats, host: u64, seconds: u64) -> Vec<usize> {
    (0..seconds)
        .map(|s| {
            stats
                .delivered_to(host)
                .filter(|d| {
                    d.packet.get(netkat::Field::IpProto) == Some(PROTO_PING_REQUEST)
                        && d.time >= SimTime::from_secs(s)
                        && d.time < SimTime::from_secs(s + 1)
                })
                .count()
        })
        .collect()
}

fn render(label: &str, stats: &Stats) {
    println!("{label}");
    println!("  second  to_H1  to_H2");
    let h1 = per_second_counts(stats, H1, 10);
    let h2 = per_second_counts(stats, H2, 10);
    for s in 0..10 {
        println!("  {:>6}  {:>5}  {:>5}", s, h1[s as usize], h2[s as usize]);
    }
    println!("  total   {:>5}  {:>5}\n", h1.iter().sum::<usize>(), h2.iter().sum::<usize>());
}

fn main() {
    let pings = workload();

    let topo = sim_topology(&learning::spec(), SimTime::from_micros(50), None);
    let mut engine = nes_engine(
        learning::nes(),
        topo,
        SimParams::default(),
        false,
        Box::new(ScenarioHosts::new()),
    );
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(15));
    render("(a) correct: flooding stops after H1's first reply:", &result.stats);
    verify_nes_run(&result).expect("learning run verifies");

    let topo = sim_topology(&learning::spec(), SimTime::from_micros(50), None);
    let mut engine = uncoordinated_engine(
        learning::nes(),
        topo,
        SimParams::default(),
        SimTime::from_millis(4_000),
        3,
        Box::new(ScenarioHosts::new()),
    );
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(15));
    render("(b) uncoordinated (4s delay): H2 keeps receiving flooded copies:", &result.stats);
}
