//! Figure 16(a): H1–H2 bandwidth around the ring, our runtime (tags,
//! digests, per-hop state) vs the reference static implementation, for
//! diameters 2–8 — plus UDP loss under overload.
//!
//! The paper measured ~6% average degradation with iperf on Mininet; here
//! the runtime pays a 12-byte tag+digest header on every frame and 1 µs of
//! extra per-hop processing.
//!
//! Run with: `cargo run --release -p edn-bench --bin fig16a_ring_bandwidth`

use edn_apps::ring::Ring;
use nes_runtime::{nes_engine, StaticDataPlane};
use netsim::traffic::{
    proto_bytes_delivered, proto_packets_delivered, schedule_tcp_flow, schedule_udp_flow,
    ScenarioHosts, TcpFlowSpec, UdpFlowSpec, PROTO_TCP_DATA, PROTO_UDP,
};
use netsim::{Engine, SimParams, SimTime};

/// 10 Mbit/s links.
const CAPACITY: u64 = 1_250_000;
/// The NES runtime's extra on-the-wire bytes (tag + digest).
const OVERHEAD: u32 = 12;
const SEGMENTS: u64 = 1_500;

fn horizon() -> SimTime {
    SimTime::from_secs(60)
}

#[derive(Clone, Copy)]
struct Measurement {
    tcp_mbps: f64,
    udp_goodput_mbps: f64,
    udp_loss_pct: f64,
}

fn measure(ring: &Ring, with_runtime: bool) -> Measurement {
    let mut params = SimParams::default();
    if with_runtime {
        params.header_overhead = OVERHEAD;
        params.switch_delay += SimTime::from_micros(1);
    }
    let topo = ring.sim_topology(SimTime::from_micros(100), Some(CAPACITY));

    // TCP-like: ack-clocked transfer of SEGMENTS x 1500 B.
    let spec = TcpFlowSpec {
        flow: 1,
        src: ring.h1(),
        dst: ring.h2(),
        start: SimTime::ZERO,
        total: SEGMENTS,
        window: 16,
        segment_size: 1_500,
    };
    let hosts = ScenarioHosts::new().with_tcp_flow(spec);
    let tcp_stats = if with_runtime {
        let mut engine = nes_engine(ring.nes(), topo.clone(), params, false, Box::new(hosts));
        schedule_tcp_flow(&mut engine, &spec);
        engine.run_until(horizon()).stats
    } else {
        let mut engine = Engine::new(
            topo.clone(),
            params,
            StaticDataPlane::new(ring.config(true)),
            Box::new(hosts),
        );
        schedule_tcp_flow(&mut engine, &spec);
        engine.run_until(horizon()).stats
    };
    let last_data = tcp_stats
        .delivered_to(ring.h2())
        .filter(|d| d.packet.get(netkat::Field::IpProto) == Some(PROTO_TCP_DATA))
        .map(|d| d.time)
        .max()
        .unwrap_or(SimTime::ZERO);
    let tcp_bytes =
        proto_bytes_delivered(&tcp_stats, ring.h2(), PROTO_TCP_DATA, SimTime::ZERO, horizon());
    let tcp_mbps = tcp_bytes as f64 * 8.0 / last_data.as_secs_f64().max(1e-9) / 1e6;

    // UDP: offer exactly the link rate for 10 s (the overheaded runtime
    // cannot fit it and shows loss).
    let interval = SimTime::from_micros(1_500 * 1_000_000 / CAPACITY);
    let udp_end = SimTime::from_secs(10);
    let udp_spec = UdpFlowSpec {
        flow: 2,
        src: ring.h1(),
        dst: ring.h2(),
        start: SimTime::ZERO,
        end: udp_end,
        interval,
        size: 1_500,
    };
    let (udp_stats, sent) = if with_runtime {
        let mut engine =
            nes_engine(ring.nes(), topo.clone(), params, false, Box::new(ScenarioHosts::new()));
        let sent = schedule_udp_flow(&mut engine, &udp_spec);
        (engine.run_until(horizon()).stats, sent)
    } else {
        let mut engine = Engine::new(
            topo,
            params,
            StaticDataPlane::new(ring.config(true)),
            Box::new(ScenarioHosts::new()),
        );
        let sent = schedule_udp_flow(&mut engine, &udp_spec);
        (engine.run_until(horizon()).stats, sent)
    };
    let got = proto_packets_delivered(&udp_stats, ring.h2(), PROTO_UDP) as u64;
    let udp_goodput_mbps =
        proto_bytes_delivered(&udp_stats, ring.h2(), PROTO_UDP, SimTime::ZERO, horizon()) as f64
            * 8.0
            / udp_end.as_secs_f64()
            / 1e6;
    let udp_loss_pct = 100.0 * (sent - got) as f64 / sent.max(1) as f64;
    Measurement { tcp_mbps, udp_goodput_mbps, udp_loss_pct }
}

fn main() {
    println!("# Fig. 16(a): ring bandwidth, ours (tags+digests) vs reference (static)");
    println!("# links: 10 Mbit/s, 100us latency; runtime overhead: {OVERHEAD} B/frame + 1us/hop");
    println!(
        "diameter,tcp_ref_mbps,tcp_ours_mbps,tcp_degradation_pct,\
         udp_ref_mbps,udp_ours_mbps,udp_ref_loss_pct,udp_ours_loss_pct"
    );
    let mut degradations = Vec::new();
    for diameter in 2..=8 {
        let ring = Ring::new(diameter);
        let reference = measure(&ring, false);
        let ours = measure(&ring, true);
        let degradation = 100.0 * (1.0 - ours.tcp_mbps / reference.tcp_mbps);
        degradations.push(degradation);
        println!(
            "{diameter},{:.3},{:.3},{:.2},{:.3},{:.3},{:.2},{:.2}",
            reference.tcp_mbps,
            ours.tcp_mbps,
            degradation,
            reference.udp_goodput_mbps,
            ours.udp_goodput_mbps,
            reference.udp_loss_pct,
            ours.udp_loss_pct,
        );
    }
    let avg = degradations.iter().sum::<f64>() / degradations.len() as f64;
    println!(
        "# average TCP degradation: {avg:.2}% (paper: ~6%; shape check: within single digits)"
    );
}
