//! Campaign throughput harness: how fast can the coordinated runtime
//! retire *successive* event-driven updates under live heavy-tailed
//! traffic — and does every one of them verify?
//!
//! Run with: `cargo run --release -p edn-bench --bin fig_campaign`
//!
//! The harness compiles a declarative scenario (see `crates/scenario`): a
//! fat-tree(8) running a 20-update victim-unblock campaign with causal
//! probes, under streamed permutation traffic with Pareto flow sizes. Four
//! legs run in one process — `{throughput, verified} × {scratch, delta}`:
//!
//! * **throughput** — unchecked, shard count from `EDN_SHARDS`: the raw
//!   updates/sec the runtime sustains (trigger injection to final firing);
//! * **verified** — the online Definition 6 checker attached (the engine
//!   serializes under an observer): the same campaign, now with a verdict;
//! * **scratch** vs **delta** — the table-construction path
//!   (`CompilePath`), pinned per leg so the sweep is self-contained: the
//!   scratch legs recompile every configuration into guarded tables, the
//!   delta legs diff successive configurations and patch. The *sustained*
//!   rate charges each leg its own compile time
//!   (`fired / (compile + run)`), which is where delta compilation pays.
//!
//! All four legs must report byte-identical `Stats` — checking, sharding,
//! and the compile path may cost wall time but never change a result. The
//! CSV goes to stdout; a JSON summary (all legs' rates plus the verdict)
//! goes to `CAMPAIGN_JSON`.
//!
//! Environment overrides (CI smoke uses small values):
//! * `CAMPAIGN_FATTREE_K` — fat-tree arity (default `8`: 80 switches, 128
//!   hosts);
//! * `CAMPAIGN_UPDATES` — campaign length (default `20`, max `63`: the
//!   online checker's window);
//! * `CAMPAIGN_SEED` — scenario seed (default `2016`);
//! * `CAMPAIGN_JSON` — where to write the summary (default
//!   `BENCH_campaign.json`; empty string disables).

use edn_bench::env_u64;
use edn_obs::Stopwatch;
use edn_scenario::{CompiledScenario, ModelSpec, ScenarioSpec, TopologySpec, WorkloadSpec};
use edn_topo::TrafficPattern;
use nes_runtime::{CompilePath, DeployKnobs};
use netsim::{ChannelModel, DropReason, SimTime, Stats};
use std::fmt::Write as _;

/// `VmHWM` (peak resident set) of this process, in kilobytes.
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// The 20-update fat-tree campaign, as scenario data.
fn campaign_spec(k: u64, updates: u64, seed: u64) -> ScenarioSpec {
    let spacing = SimTime::from_millis(100);
    let start = SimTime::from_millis(100);
    ScenarioSpec {
        name: format!("campaign-fattree{k}"),
        seed,
        topology: TopologySpec::FatTree(k),
        horizon: SimTime::ZERO, // auto: past the last flow, step, and probe
        workload: WorkloadSpec {
            pattern: TrafficPattern::Permutation,
            packets_per_flow: 3,
            spread: start + SimTime::from_micros(spacing.as_micros() * (updates + 2)),
            model: ModelSpec::Pareto,
            ..WorkloadSpec::default()
        },
        campaign: edn_scenario::CampaignSpec {
            updates: updates as usize,
            start,
            spacing,
            probe: true,
            ..edn_scenario::CampaignSpec::default()
        },
        channel: edn_scenario::ChannelSpec::default(),
        actions: Vec::new(),
    }
}

/// One leg's measurements.
struct Leg {
    stats: Stats,
    datagrams: u64,
    fired: usize,
    /// Deployment (table construction) time, µs.
    compile_us: u64,
    /// Run time, µs.
    wall_us: u64,
    /// Rule adds + removes the delta chain applied (delta legs only).
    rule_mods: Option<u64>,
    verdict: &'static str,
}

/// One leg; the compile path is pinned explicitly per leg (the sweep is
/// self-contained — `EDN_COMPILE` does not affect it), the remaining knobs
/// come from the environment.
fn leg(c: &CompiledScenario, check: bool, compile: CompilePath) -> Leg {
    let knobs = DeployKnobs { compile, ..DeployKnobs::from_env() };
    let sw = Stopwatch::start();
    let mut engine = c.engine_with(knobs);
    let compile_us = sw.elapsed_us();
    let handle = check.then(|| {
        nes_runtime::attach_online_checker(&mut engine, &c.nes)
            .expect("a ≤63-step campaign fits the online checker's windows")
    });
    c.apply_actions(&mut engine);
    let datagrams = c.load_traffic(&mut engine, true);
    c.inject_campaign(&mut engine);
    let sw = Stopwatch::start();
    let result = engine.run_until(c.horizon);
    let wall_us = sw.elapsed_us();
    let fired = result.dataplane.fired_sequence().len();
    let rule_mods = result.dataplane.delta_rule_mods();
    let verdict = match handle.map(|h| h.verdict()) {
        None => "unchecked",
        Some(Ok(())) => "correct",
        Some(Err(v)) => v.name(),
    };
    Leg { stats: result.stats, datagrams, fired, compile_us, wall_us, rule_mods, verdict }
}

fn updates_per_sec(fired: usize, us: u64) -> f64 {
    fired as f64 * 1_000_000.0 / us.max(1) as f64
}

fn main() {
    let k = env_u64("CAMPAIGN_FATTREE_K", 8);
    let updates = env_u64("CAMPAIGN_UPDATES", 20);
    let seed = env_u64("CAMPAIGN_SEED", 2016);
    let json_path =
        std::env::var("CAMPAIGN_JSON").unwrap_or_else(|_| "BENCH_campaign.json".to_string());

    let spec = campaign_spec(k, updates, seed);
    let c = CompiledScenario::compile(&spec).expect("the campaign spec compiles");
    // Warm-up: one untimed engine build absorbs allocator growth and cold
    // caches, so the four timed legs compare compile paths, not page faults.
    drop(c.engine_with(DeployKnobs::from_env()));
    let drop_cols = DropReason::ALL.map(|r| format!("drops_{}", r.name())).join(",");
    println!(
        "leg,compile,updates,fired,datagrams,events,compile_us,wall_us,updates_per_sec,\
         sustained_updates_per_sec,vm_hwm_kb,verdict,{drop_cols}"
    );

    let mut json = String::new();
    let mut baseline: Option<Stats> = None;
    for compile in [CompilePath::Scratch, CompilePath::Delta] {
        for (name, check) in [("throughput", false), ("verified", true)] {
            let l = leg(&c, check, compile);
            assert_eq!(l.fired, c.steps.len(), "every campaign step fires");
            if check {
                assert_eq!(l.verdict, "correct", "the NES runtime must verify (Theorem 1)");
            }
            if let Some(b) = &baseline {
                assert_eq!(&l.stats, b, "the compile path must not change a byte of the stats");
            }
            let rate = updates_per_sec(l.fired, l.wall_us);
            let sustained = updates_per_sec(l.fired, l.compile_us + l.wall_us);
            let named = l.stats.dropped.map(|d| d.to_string()).join(",");
            println!(
                "{name},{},{updates},{},{},{},{},{},{rate:.2},{sustained:.2},{},{},{named}",
                compile.label(),
                l.fired,
                l.datagrams,
                l.stats.events_processed,
                l.compile_us,
                l.wall_us,
                vm_hwm_kb(),
                l.verdict,
            );
            if !json.is_empty() {
                json.push_str(",\n");
            }
            let _ = write!(
                json,
                "  \"{name}_{}\": {{ \"fired\": {}, \"events\": {}, \"compile_us\": {}, \
                 \"wall_us\": {}, \"updates_per_sec\": {rate:.2}, \
                 \"sustained_updates_per_sec\": {sustained:.2}, \"rule_mods\": {}, \
                 \"verdict\": \"{}\" }}",
                compile.label(),
                l.fired,
                l.stats.events_processed,
                l.compile_us,
                l.wall_us,
                l.rule_mods.map_or_else(|| "null".to_string(), |m| m.to_string()),
                l.verdict,
            );
            baseline = Some(l.stats);
        }
    }

    // The chaos leg: the same campaign over a seeded lossy control channel,
    // with the ack/retry reliability layer wrapped around the runtime and
    // the online checker attached. Loss reshapes control timing, so this
    // leg is *not* byte-compared against the ideal baseline — the contract
    // here is the verdict: every step fires and Definition 6 still holds.
    {
        let sw = Stopwatch::start();
        let out = edn_scenario::run_coordinated(
            &c,
            &edn_scenario::RunOptions {
                check: true,
                channel: Some(ChannelModel::lossy(seed)),
                ..edn_scenario::RunOptions::default()
            },
        );
        let wall_us = sw.elapsed_us();
        let fired = out.fired.expect("coordinated legs count firings");
        assert_eq!(fired, c.steps.len(), "every campaign step fires under loss");
        assert!(!out.degraded, "the default retry budget must survive the stock lossy model");
        assert_eq!(out.verdict_name(), "correct", "Theorem 1 must survive the lossy channel");
        let rate = updates_per_sec(fired, wall_us);
        let named = out.stats.dropped.map(|d| d.to_string()).join(",");
        println!(
            "lossy,reliable,{updates},{fired},{},{},0,{wall_us},{rate:.2},{rate:.2},{},{},{named}",
            out.datagrams,
            out.stats.events_processed,
            vm_hwm_kb(),
            out.verdict_name(),
        );
        let _ = write!(
            json,
            ",\n  \"lossy_reliable\": {{ \"fired\": {fired}, \"events\": {}, \
             \"wall_us\": {wall_us}, \"updates_per_sec\": {rate:.2}, \"verdict\": \"{}\" }}",
            out.stats.events_processed,
            out.verdict_name(),
        );
    }

    if !json_path.is_empty() {
        let body = format!(
            "{{\n  \"topology\": \"fat_tree({k})\",\n  \"updates\": {updates},\n  \
             \"seed\": {seed},\n  \"model\": \"pareto\",\n{json}\n}}\n"
        );
        if let Err(e) = std::fs::write(&json_path, body) {
            eprintln!("fig_campaign: could not write {json_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("fig_campaign: summary written to {json_path}");
    }
}
