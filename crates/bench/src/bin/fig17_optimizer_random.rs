//! Figure 17: the rule-sharing heuristic on random configurations —
//! 64 configurations of 20 rules each, many seeds, plotting the optimized
//! rule count against the original (the paper reports ~32% average
//! savings).
//!
//! Run with: `cargo run --release -p edn-bench --bin fig17_optimizer_random`

use rule_optimizer::{optimize, optimize_in_order, random_configs};

fn main() {
    println!("# Fig. 17: heuristic rule sharing on 64 random configurations of 20 rules");
    println!("seed,universe,original_rules,optimized_rules,savings_pct,in_order_rules");
    let mut total_savings = 0.0;
    let mut points = 0;
    for universe in [30usize, 40, 50] {
        for seed in 0..20u64 {
            let configs = random_configs(64, 20, universe, seed);
            let opt = optimize(&configs);
            // Sanity: semantics preserved.
            for (i, c) in configs.iter().enumerate() {
                assert_eq!(&opt.effective_rules(i), c, "seed {seed}: config {i} changed");
            }
            let savings = opt.savings() * 100.0;
            total_savings += savings;
            points += 1;
            // Ablation: the same trie without the pairing heuristic.
            let naive = optimize_in_order(&configs);
            println!(
                "{seed},{universe},{},{},{savings:.1},{}",
                opt.original_count,
                opt.optimized_count(),
                naive.optimized_count()
            );
        }
    }
    println!(
        "# average savings: {:.1}% over {points} instances (paper: ~32%)",
        total_savings / points as f64
    );
}
