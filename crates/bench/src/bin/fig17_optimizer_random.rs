//! Figure 17: the rule-sharing heuristic on random configurations —
//! 64 configurations of 20 rules each, many instances, plotting the
//! optimized rule count against the original (the paper reports ~32%
//! average savings).
//!
//! Run with: `cargo run --release -p edn-bench --bin fig17_optimizer_random`
//!
//! One seeded RNG (`FIG17_SEED`, default `2016`) is threaded through the
//! whole sweep, so the 20 instances per universe size are independent draws
//! from a single stream. (Re-seeding per point — the old bug — made
//! instance *i* of every universe size start from the same shuffle,
//! correlating the columns of the plot.) The data rows are pinned in
//! `BENCH_fig17.csv` at the repo root; CI replays the sweep and `cmp`s.

use edn_bench::env_u64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rule_optimizer::{optimize, optimize_in_order, random_configs_with};

fn main() {
    let seed = env_u64("FIG17_SEED", 2016);
    let mut rng = StdRng::seed_from_u64(seed);
    println!("# Fig. 17: heuristic rule sharing on 64 random configurations of 20 rules");
    println!("# sweep seed {seed} (one RNG stream across all instances)");
    println!("instance,universe,original_rules,optimized_rules,savings_pct,in_order_rules");
    let mut total_savings = 0.0;
    let mut points = 0;
    for universe in [30usize, 40, 50] {
        for instance in 0..20u64 {
            let configs = random_configs_with(&mut rng, 64, 20, universe);
            let opt = optimize(&configs);
            // Sanity: semantics preserved.
            for (i, c) in configs.iter().enumerate() {
                assert_eq!(&opt.effective_rules(i), c, "instance {instance}: config {i} changed");
            }
            let savings = opt.savings() * 100.0;
            total_savings += savings;
            points += 1;
            // Ablation: the same trie without the pairing heuristic.
            let naive = optimize_in_order(&configs);
            println!(
                "{instance},{universe},{},{},{savings:.1},{}",
                opt.original_count,
                opt.optimized_count(),
                naive.optimized_count()
            );
        }
    }
    println!(
        "# average savings: {:.1}% over {points} instances (paper: ~32%)",
        total_savings / points as f64
    );
}
