//! Verified-at-scale harness: a fat-tree(16) run of 10M+ events that is
//! *checked*, not just simulated — streaming injection
//! ([`edn_topo::attach_stream`]), aggregate-only accounting
//! (`TraceMode::StatsOnly` + `StatsMode::Counters`), and the online
//! Definition 6 checker ([`nes_runtime::attach_online_checker`]) running
//! inside the event loop, retiring trace prefixes as their happens-before
//! obligations discharge.
//!
//! Run with: `cargo run --release -p edn-bench --bin fig18_verified_scale`
//!
//! The harness runs the same scenario at two event counts (1× and 2×) in
//! one process and reports the process high-water RSS (`VmHWM` from
//! `/proc/self/status`) after each: because every stage is streaming, the
//! second, twice-as-long run should barely move the high-water mark — peak
//! memory tracks packets *in flight*, not events *processed*. The final
//! column is the online checker's verdict (`correct` is the expected
//! outcome: Theorem 1).
//!
//! Environment overrides (CI smoke uses small values):
//! * `VSCALE_FATTREE_K` — fat-tree arity (default `16`: 320 switches,
//!   1024 hosts);
//! * `VSCALE_PACKETS_PER_FLOW` — base datagrams per flow at the 1× point
//!   (default `150`; the 2× point doubles it — with the default Pareto
//!   model inflating flow sizes ~4.3× on average, the two points together
//!   process well over 10M events on the default topology);
//! * `VSCALE_MODEL` — arrival model: `uniform` (the base workload),
//!   `pareto`, `onoff`, or `diurnal` (default `pareto`: heavy-tailed flow
//!   sizes are the interesting case at scale);
//! * `VSCALE_SEED` — workload seed (default `7`).

use edn_bench::env_u64;
use edn_topo::{
    attach_stream, fat_tree, synthesize_arrivals, ArrivalModel, TierProfile, TrafficPattern,
    Workload,
};
use netkat::LookupPath;
use netsim::traffic::udp_packet;
use netsim::{SimParams, SimTime, SinkHosts, StatsMode, TraceMode};
use std::time::Instant;

/// `VmHWM` (peak resident set) of this process, in kilobytes.
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

fn model_from_env() -> Option<ArrivalModel> {
    match std::env::var("VSCALE_MODEL").as_deref() {
        Ok("uniform") => None,
        Ok("onoff") => Some(ArrivalModel::OnOff { burst_packets: 8, off: SimTime::from_millis(5) }),
        Ok("diurnal") => Some(ArrivalModel::Diurnal { periods: 2, trough_pct: 10 }),
        Ok("pareto") | Err(_) => Some(ArrivalModel::Pareto { alpha: 1.3, max_packets: 64 * 1024 }),
        Ok(other) => panic!("VSCALE_MODEL must be uniform|pareto|onoff|diurnal, got `{other}`"),
    }
}

/// One verified streaming run; returns `(events, datagrams, wall_us,
/// arena_slots, verdict_ok)`.
fn run_point(k: u64, packets_per_flow: u64, seed: u64) -> (u64, u64, u64, u64, bool) {
    let gen = fat_tree(k, TierProfile::default());
    let workload = Workload {
        pattern: TrafficPattern::Permutation,
        seed,
        packets_per_flow,
        flows: gen.host_count(),
        interval: SimTime::from_micros(100),
        ..Workload::default()
    };
    let flows = match model_from_env() {
        None => edn_topo::synthesize(&gen, &workload),
        Some(m) => synthesize_arrivals(&gen, &workload, &m),
    };
    let horizon =
        flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO) + SimTime::from_secs(10);
    let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
    let nes = edn_apps::generated::firewall_nes(&gen, inside, outside);
    let mut engine = nes_runtime::nes_engine_with_path(
        nes.clone(),
        gen.sim().clone(),
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        LookupPath::Indexed,
    )
    .with_trace_mode(TraceMode::StatsOnly)
    .with_stats_mode(StatsMode::Counters);
    let handle = nes_runtime::attach_online_checker(&mut engine, &nes)
        .expect("the firewall NES fits the checker window");
    let datagrams = attach_stream(&mut engine, &flows);
    engine.inject_at(SimTime::from_millis(5), inside, udp_packet(inside, outside, u64::MAX, 0));
    let started = Instant::now();
    engine.run(horizon);
    let wall = started.elapsed().as_micros() as u64;
    let arena_slots = engine.arena_slots() as u64;
    let result = engine.finish();
    assert!(result.trace.is_empty(), "StatsOnly must not record");
    assert!(result.stats.deliveries.is_empty(), "Counters must not retain deliveries");
    (result.stats.events_processed, datagrams + 1, wall, arena_slots, handle.verdict().is_ok())
}

fn main() {
    let k = env_u64("VSCALE_FATTREE_K", 16);
    let packets = env_u64("VSCALE_PACKETS_PER_FLOW", 150);
    let seed = env_u64("VSCALE_SEED", 7);
    println!("point,packets_per_flow,datagrams,events,wall_us,arena_slots,vm_hwm_kb,verdict");
    let mut total_events = 0;
    for (point, p) in [("1x", packets), ("2x", 2 * packets)] {
        let (events, datagrams, wall_us, slots, ok) = run_point(k, p, seed);
        total_events += events;
        let verdict = if ok { "correct" } else { "violation" };
        println!("{point},{p},{datagrams},{events},{wall_us},{slots},{},{verdict}", vm_hwm_kb());
        assert!(ok, "the NES runtime must verify (Theorem 1)");
    }
    eprintln!("total events processed: {total_events}");
}
