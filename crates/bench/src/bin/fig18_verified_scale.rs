//! Verified-at-scale harness: a fat-tree(16) run of 10M+ events that is
//! *checked*, not just simulated — streaming injection
//! ([`edn_topo::attach_stream`]), aggregate-only accounting
//! (`TraceMode::StatsOnly` + `StatsMode::Counters`), and the online
//! Definition 6 checker ([`nes_runtime::attach_online_checker`]) running
//! inside the event loop, retiring trace prefixes as their happens-before
//! obligations discharge.
//!
//! Run with: `cargo run --release -p edn-bench --bin fig18_verified_scale`
//!
//! The harness runs the same scenario at two event counts (1× and 2×) in
//! one process and reports the process high-water RSS (`VmHWM` from
//! `/proc/self/status`) after each: because every stage is streaming, the
//! second, twice-as-long run should barely move the high-water mark — peak
//! memory tracks packets *in flight*, not events *processed*. The
//! `verdict` column is the online checker's verdict (`correct` is the
//! expected outcome: Theorem 1), and the trailing columns name each
//! [`netsim::DropReason`]'s count.
//!
//! The harness always runs with telemetry at least at `counters` (the
//! `EDN_METRICS=full` selection is honored) and writes a per-point JSON
//! metrics snapshot — p50/p99 sim-time event latency, queue/arena/
//! obligation high-water, per-reason drops — to `VSCALE_JSON`. At `full`,
//! a checker violation or a harness panic additionally dumps the engine's
//! flight recorder (the trailing ~1024 events) to `EDN_FLIGHT_OUT`.
//!
//! Environment overrides (CI smoke uses small values):
//! * `VSCALE_FATTREE_K` — fat-tree arity (default `16`: 320 switches,
//!   1024 hosts);
//! * `VSCALE_PACKETS_PER_FLOW` — base datagrams per flow at the 1× point
//!   (default `150`; the 2× point doubles it — with the default Pareto
//!   model inflating flow sizes ~4.3× on average, the two points together
//!   process well over 10M events on the default topology);
//! * `VSCALE_MODEL` — arrival model: `uniform` (the base workload),
//!   `pareto`, `onoff`, or `diurnal` (default `pareto`: heavy-tailed flow
//!   sizes are the interesting case at scale);
//! * `VSCALE_SEED` — workload seed (default `7`);
//! * `VSCALE_JSON` — where to write the metrics snapshot (default
//!   `BENCH_vscale_metrics.json`; empty string disables);
//! * `EDN_METRICS` / `EDN_METRICS_OUT` / `EDN_FLIGHT_OUT` — telemetry
//!   level, per-run registry export, and flight-dump path (see
//!   `ARCHITECTURE.md`).

use edn_bench::env_u64;
use edn_obs::{FlightRecorder, MetricsLevel, Registry, Stopwatch};
use edn_topo::{
    attach_stream, fat_tree, synthesize_arrivals, ArrivalModel, TierProfile, TrafficPattern,
    Workload,
};
use netkat::LookupPath;
use netsim::traffic::udp_packet;
use netsim::{DropReason, SimParams, SimTime, SinkHosts, StatsMode, TraceMode};
use std::fmt::Write as _;

/// `VmHWM` (peak resident set) of this process, in kilobytes.
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

fn model_from_env() -> Option<ArrivalModel> {
    match std::env::var("VSCALE_MODEL").as_deref() {
        Ok("uniform") => None,
        Ok("onoff") => Some(ArrivalModel::OnOff { burst_packets: 8, off: SimTime::from_millis(5) }),
        Ok("diurnal") => Some(ArrivalModel::Diurnal { periods: 2, trough_pct: 10 }),
        Ok("pareto") | Err(_) => Some(ArrivalModel::Pareto { alpha: 1.3, max_packets: 64 * 1024 }),
        Ok(other) => panic!("VSCALE_MODEL must be uniform|pareto|onoff|diurnal, got `{other}`"),
    }
}

/// Dumps the flight recorder when the harness unwinds (a failed assert
/// anywhere in the run) — the crash dump that motivates the recorder.
struct FlightGuard(Option<FlightRecorder>);

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        if let Some(fr) = &self.0 {
            let path = FlightRecorder::dump_path_from_env("edn_flight.json");
            match fr.dump_to(&path) {
                Ok(()) => eprintln!("vscale: flight recorder dumped to {path}"),
                Err(e) => eprintln!("vscale: flight dump to {path} failed: {e}"),
            }
        }
    }
}

/// One verified streaming run; returns `(events, datagrams, wall_us,
/// arena_slots, verdict_ok, per-reason drops, metric registry)`.
#[allow(clippy::type_complexity)]
fn run_point(
    k: u64,
    packets_per_flow: u64,
    seed: u64,
) -> (u64, u64, u64, u64, bool, [u64; 4], Registry) {
    let gen = fat_tree(k, TierProfile::default());
    let workload = Workload {
        pattern: TrafficPattern::Permutation,
        seed,
        packets_per_flow,
        flows: gen.host_count(),
        interval: SimTime::from_micros(100),
        ..Workload::default()
    };
    let flows = match model_from_env() {
        None => edn_topo::synthesize(&gen, &workload),
        Some(m) => synthesize_arrivals(&gen, &workload, &m),
    };
    let horizon =
        flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO) + SimTime::from_secs(10);
    let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
    let nes = edn_apps::generated::firewall_nes(&gen, inside, outside);
    // This harness always measures with telemetry on: the snapshot is its
    // deliverable. `EDN_METRICS=full` upgrades to phase profiling and the
    // flight recorder; `off` is promoted to `counters`.
    let level = match MetricsLevel::from_env() {
        MetricsLevel::Off => MetricsLevel::Counters,
        lv => lv,
    };
    let mut engine = nes_runtime::nes_engine_with_path(
        nes.clone(),
        gen.sim().clone(),
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        LookupPath::Indexed,
    )
    .with_trace_mode(TraceMode::StatsOnly)
    .with_stats_mode(StatsMode::Counters)
    .with_metrics(level);
    let guard = FlightGuard(engine.flight_recorder());
    let handle = nes_runtime::attach_online_checker(&mut engine, &nes)
        .expect("the firewall NES fits the checker window");
    let datagrams = attach_stream(&mut engine, &flows);
    engine.inject_at(SimTime::from_millis(5), inside, udp_packet(inside, outside, u64::MAX, 0));
    let sw = Stopwatch::start();
    engine.run(horizon);
    let wall = sw.elapsed_us();
    let arena_slots = engine.arena_slots() as u64;
    let result = engine.finish();
    assert!(result.trace.is_empty(), "StatsOnly must not record");
    assert!(result.stats.deliveries.is_empty(), "Counters must not retain deliveries");
    let ok = handle.verdict().is_ok();
    if !ok {
        if let Some(fr) = &guard.0 {
            let path = FlightRecorder::dump_path_from_env("edn_flight.json");
            match fr.dump_to(&path) {
                Ok(()) => eprintln!("vscale: violation — flight recorder dumped to {path}"),
                Err(e) => eprintln!("vscale: flight dump to {path} failed: {e}"),
            }
        }
    }
    (
        result.stats.events_processed,
        datagrams + 1,
        wall,
        arena_slots,
        ok,
        result.stats.dropped,
        result.metrics,
    )
}

fn main() {
    let k = env_u64("VSCALE_FATTREE_K", 16);
    let packets = env_u64("VSCALE_PACKETS_PER_FLOW", 150);
    let seed = env_u64("VSCALE_SEED", 7);
    let json_path =
        std::env::var("VSCALE_JSON").unwrap_or_else(|_| "BENCH_vscale_metrics.json".to_string());
    let drop_cols = DropReason::ALL.map(|r| format!("drops_{}", r.name())).join(",");
    println!(
        "point,packets_per_flow,datagrams,events,wall_us,arena_slots,vm_hwm_kb,verdict,{drop_cols}"
    );
    let mut total_events = 0;
    let mut snapshots = String::new();
    for (point, p) in [("1x", packets), ("2x", 2 * packets)] {
        let (events, datagrams, wall_us, slots, ok, drops, metrics) = run_point(k, p, seed);
        total_events += events;
        let verdict = if ok { "correct" } else { "violation" };
        let named = drops.map(|d| d.to_string()).join(",");
        println!(
            "{point},{p},{datagrams},{events},{wall_us},{slots},{},{verdict},{named}",
            vm_hwm_kb()
        );
        if !snapshots.is_empty() {
            snapshots.push_str(",\n");
        }
        let _ = write!(snapshots, "  \"{point}\": {}", metrics.render_json().trim_end());
        assert!(ok, "the NES runtime must verify (Theorem 1)");
    }
    if !json_path.is_empty() {
        let body = format!("{{\n{snapshots}\n}}\n");
        if let Err(e) = std::fs::write(&json_path, body) {
            eprintln!("vscale: could not write {json_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("vscale: metrics snapshot written to {json_path}");
    }
    eprintln!("total events processed: {total_events}");
}
