//! Figure 16(b): event-discovery time around the ring — how long until
//! every switch learns the reroute event, with pure digest gossip vs
//! controller-assisted broadcast, for diameters 3–8.
//!
//! Gossip is carried by sparse background traffic (neighbour pings every
//! 2 s), so discovery time grows with hop distance; controller assistance
//! is flat at roughly the controller round-trip.
//!
//! Run with: `cargo run --release -p edn-bench --bin fig16b_ring_convergence`

use edn_apps::ring::{host, Ring};
use edn_core::EventId;
use nes_runtime::{nes_engine, verify_nes_run};
use netsim::traffic::{udp_packet, ScenarioHosts};
use netsim::{SimParams, SimTime};

/// Background gossip: each host sends one UDP datagram to its clockwise
/// neighbour every 2 s. Datagrams take the one-hop shortest path in both
/// configurations, so digests propagate exactly one hop per round.
const GOSSIP_INTERVAL_MS: u64 = 2_000;

struct Convergence {
    max_s: f64,
    avg_s: f64,
}

fn run(diameter: u64, broadcast: bool, seed_offset: u64) -> Convergence {
    let ring = Ring::new(diameter);
    let n = ring.switch_count();
    let topo = ring.sim_topology(SimTime::from_micros(100), None);
    let mut engine = nes_engine(
        ring.nes(),
        topo,
        SimParams::default(),
        broadcast,
        Box::new(ScenarioHosts::new()),
    );
    let mut id = 0;
    for round in 0..60u64 {
        for sw in 1..=n {
            // Descending offsets: within a round, switch k+1's datagram
            // leaves before switch k's, so knowledge advances exactly one
            // hop per round (no within-round cascade).
            engine.inject_at(
                SimTime::from_millis(GOSSIP_INTERVAL_MS * round + 17 * (n - sw) + seed_offset),
                host(sw),
                udp_packet(host(sw), host(sw % n + 1), sw, id),
            );
            id += 1;
        }
    }
    let t0 = SimTime::from_secs(1);
    engine.inject_at(t0, ring.h1(), ring.trigger_packet());
    let result = engine.run_until(SimTime::from_secs(130));
    verify_nes_run(&result).expect("ring convergence run is consistent");
    let times: Vec<f64> = (1..=n)
        .map(|sw| {
            result
                .dataplane
                .discovery_time(sw, EventId::new(0))
                .expect("every switch eventually learns")
                .saturating_sub(t0)
                .as_secs_f64()
        })
        .collect();
    let max_s = times.iter().cloned().fold(0.0, f64::max);
    let avg_s = times.iter().sum::<f64>() / times.len() as f64;
    Convergence { max_s, avg_s }
}

fn main() {
    println!("# Fig. 16(b): event discovery time around the ring (seconds)");
    println!("# gossip vehicle: one-hop neighbour datagrams every {GOSSIP_INTERVAL_MS} ms; 3 runs per point");
    println!("diameter,gossip_max_s,gossip_avg_s,assisted_max_s,assisted_avg_s");
    for diameter in 3..=8 {
        let mut gmax: f64 = 0.0;
        let mut gavg = 0.0;
        let mut bmax: f64 = 0.0;
        let mut bavg = 0.0;
        let runs = 3;
        for r in 0..runs {
            let g = run(diameter, false, r * 131);
            gmax = gmax.max(g.max_s);
            gavg += g.avg_s;
            let b = run(diameter, true, r * 131);
            bmax = bmax.max(b.max_s);
            bavg += b.avg_s;
        }
        println!(
            "{diameter},{gmax:.3},{:.3},{bmax:.3},{:.3}",
            gavg / runs as f64,
            bavg / runs as f64
        );
    }
    println!("# shape check: gossip grows with diameter; controller assistance stays flat");
}
