//! The Section 5.1/5.3 per-application table: compile time, installed rule
//! counts, and optimized rule counts for all five case studies.
//!
//! The paper reports (rules, optimized): firewall 18→16, learning 43→27,
//! authentication 72→46, bandwidth cap 158→101, IDS 152→133, with compile
//! times of 13–23 ms. Absolute numbers differ (different NetKAT compiler,
//! different rule accounting) but the ordering and the savings shape hold.
//!
//! Run with: `cargo run --release -p edn-bench --bin table_app_rules`

use edn_core::NetworkEventStructure;
use edn_obs::Stopwatch;
use nes_runtime::CompiledNes;
use rule_optimizer::optimize;

type AppBuilder = Box<dyn Fn() -> NetworkEventStructure>;

fn main() {
    println!("# Section 5.1/5.3 per-application table");
    println!(
        "app,compile_ms,event_sets,events,forwarding,stamping,detection,total_rules,\
         fwd_rules_optimized,fwd_savings_pct"
    );
    let apps: Vec<(&str, AppBuilder)> = vec![
        ("firewall", Box::new(edn_apps::firewall::nes)),
        ("learning-switch", Box::new(edn_apps::learning::nes)),
        ("authentication", Box::new(edn_apps::authentication::nes)),
        ("bandwidth-cap", Box::new(|| edn_apps::bandwidth_cap::nes(10))),
        ("ids", Box::new(edn_apps::ids::nes)),
    ];
    for (name, build) in apps {
        let sw = Stopwatch::start();
        let nes = build();
        let compiled = CompiledNes::compile(nes);
        let compile_ms = sw.elapsed_ns() as f64 / 1_000_000.0;
        let b = compiled.rule_breakdown();
        let configs = compiled.config_rule_sets();
        let opt = optimize(&configs);
        println!(
            "{name},{compile_ms:.2},{},{},{},{},{},{},{},{:.1}",
            compiled.tag_count(),
            compiled.nes().events().len(),
            b.forwarding,
            b.stamping,
            b.detection,
            b.total(),
            opt.optimized_count(),
            opt.savings() * 100.0,
        );
    }
    println!("# paper's numbers for reference: 18->16, 43->27, 72->46, 158->101, 152->133");
}
