//! Figure 18 (new): the scale trajectory — wall-clock, events processed,
//! and rule counts as switch count grows, on generated rings and fat-trees,
//! for both the static reference plane and the NES runtime.
//!
//! Run with: `cargo run --release -p edn-bench --bin fig18_scale_sweep`
//!
//! Every sweep point runs on **both** flow-table lookup paths (the linear
//! reference scan and the compiled index) and **both** trace modes (full
//! recording and stats-only): the CSV on stdout reports the combination
//! selected by `EDN_LOOKUP` (default `indexed`) and `EDN_TRACE` (default
//! `full`), and a machine-readable perf-trajectory file
//! (`BENCH_fig18.json` by default) records `(switches, events, wall,
//! ns/event)` for every combination at every point. `wall_us` times the
//! simulation event loop (`Engine::run`). All CSV columns except
//! `wall_us` are identical across lookup paths, trace modes, queue
//! implementations, and packet paths by construction — CI replays the
//! sweep across them and `cmp`s the canonical CSVs.
//!
//! Environment overrides (CI smoke uses small values):
//! * `FIG18_RING_SIZES` — comma-separated ring sizes (default
//!   `4,8,16,32,64,128`);
//! * `FIG18_FATTREE_KS` — comma-separated fat-tree arities (default
//!   `4,6,8`);
//! * `FIG18_PACKETS_PER_FLOW` — datagrams per flow (default `20`);
//! * `FIG18_SEED` — workload seed (default `7`);
//! * `FIG18_SHARDS` — comma-separated engine shard counts for the JSON
//!   trajectory (default `1,4`; the multi-shard rows run on the indexed
//!   lookup path, the headline measurement). The CSV always reports the
//!   `EDN_SHARDS` selection — and is byte-identical across shard counts,
//!   which CI `cmp`s;
//! * `FIG18_REPS` — repetitions per point, reporting the minimum
//!   wall-clock (default `1`; CI uses `1`);
//! * `FIG18_CANONICAL` — when `1`, report the wall-clock column as `0` so
//!   two runs with the same seed produce byte-identical CSV;
//! * `FIG18_JSON` — where to write the perf trajectory (default
//!   `BENCH_fig18.json`; empty string disables);
//! * `EDN_LOOKUP` — `linear` or `indexed`: the path the CSV reports;
//! * `EDN_TRACE` — `full` or `stats`: the trace mode the CSV reports;
//! * `EDN_SHARDS` — engine shard count the CSV reports;
//! * `EDN_QUEUE` / `EDN_PACKETS` — event queue and packet representation
//!   for the whole process (heap|calendar, owned|arena).

use std::fmt::Write as _;

use edn_bench::scale::{run_point, Plane, SweepRow, CSV_HEADER};
use edn_bench::{env_list, env_u64};
use edn_topo::{fat_tree, ring, GenTopology, LinkProfile, TierProfile, TrafficPattern, Workload};
use netkat::LookupPath;
use netsim::TraceMode;

/// One `(sweep point, lookup path, trace mode)` record of the perf
/// trajectory.
struct JsonRow {
    lookup: LookupPath,
    mode: TraceMode,
    row: SweepRow,
}

impl JsonRow {
    fn render(&self) -> String {
        let r = &self.row;
        format!(
            "    {{\"topology\": \"{}\", \"param\": {}, \"plane\": \"{}\", \"lookup\": \"{}\", \
             \"trace\": \"{}\", \"shards\": {}, \"switches\": {}, \"rules\": {}, \
             \"events\": {}, \"wall_us\": {}, \"ns_per_event\": {:.1}, \
             \"latency_p50_us\": {}, \"latency_p99_us\": {}, \"arena_hw\": {}, \
             \"obligations_hw\": {}}}",
            r.topology,
            r.param,
            r.plane.label(),
            self.lookup.label(),
            self.mode.label(),
            r.shards,
            r.switches,
            r.rules,
            r.events,
            r.wall_us,
            r.ns_per_event(),
            r.latency_p50_us,
            r.latency_p99_us,
            r.arena_hw,
            r.obligations_hw,
        )
    }
}

fn render_json(seed: u64, packets_per_flow: u64, rows: &[JsonRow]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fig18_scale_sweep\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"packets_per_flow\": {packets_per_flow},");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.render());
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let ring_sizes = env_list("FIG18_RING_SIZES", &[4, 8, 16, 32, 64, 128]);
    let fat_tree_ks = env_list("FIG18_FATTREE_KS", &[4, 6, 8]);
    let seed = env_u64("FIG18_SEED", 7);
    let packets_per_flow = env_u64("FIG18_PACKETS_PER_FLOW", 20);
    let reps = env_u64("FIG18_REPS", 1) as u32;
    let canonical = env_u64("FIG18_CANONICAL", 0) == 1;
    let json_path = std::env::var("FIG18_JSON").unwrap_or_else(|_| "BENCH_fig18.json".to_string());
    let csv_lookup = LookupPath::from_env();
    let csv_mode = TraceMode::from_env();
    let csv_shards = netsim::shard_count_from_env();
    let mut shard_counts = env_list("FIG18_SHARDS", &[1, 4]);
    if !shard_counts.contains(&(csv_shards as u64)) {
        shard_counts.push(csv_shards as u64);
    }
    let workload = Workload {
        pattern: TrafficPattern::Permutation,
        seed,
        packets_per_flow,
        ..Workload::default()
    };
    println!("# Fig. 18: scale sweep — permutation traffic, seed {seed}");
    println!(
        "# rings {ring_sizes:?}, fat-trees {fat_tree_ks:?}, {packets_per_flow} pkts/flow, \
         CSV lookup path: {}, CSV trace mode: {}, CSV shards: {csv_shards}, reps: {reps}",
        csv_lookup.label(),
        csv_mode.label()
    );
    println!("{CSV_HEADER}");
    let mut json_rows: Vec<JsonRow> = Vec::new();
    let mut sweep = |gen: &GenTopology, topology: &str, param: u64| {
        for plane in [Plane::Static, Plane::Nes] {
            for &shards in &shard_counts {
                let shards = shards as u32;
                for lookup in [LookupPath::Linear, LookupPath::Indexed] {
                    for mode in [TraceMode::Full, TraceMode::StatsOnly] {
                        let selected =
                            lookup == csv_lookup && mode == csv_mode && shards == csv_shards;
                        // Multi-shard rows ride the indexed path only (the
                        // headline measurement) unless explicitly selected.
                        if !selected && shards != 1 && lookup != LookupPath::Indexed {
                            continue;
                        }
                        // Non-selected combinations only feed the JSON
                        // trajectory; skip them when it is disabled.
                        if !selected && json_path.is_empty() {
                            continue;
                        }
                        let row = run_point(
                            gen, topology, param, plane, &workload, lookup, mode, shards, reps,
                        );
                        if selected {
                            let mut csv_row = row.clone();
                            if canonical {
                                csv_row.wall_us = 0;
                            }
                            println!("{}", csv_row.csv());
                        }
                        json_rows.push(JsonRow { lookup, mode, row });
                    }
                }
            }
        }
    };
    for &n in &ring_sizes {
        sweep(&ring(n, LinkProfile::default()), "ring", n);
    }
    for &k in &fat_tree_ks {
        sweep(&fat_tree(k, TierProfile::default()), "fat-tree", k);
    }
    if !json_path.is_empty() {
        let json = render_json(seed, packets_per_flow, &json_rows);
        if let Err(e) = std::fs::write(&json_path, json) {
            eprintln!("fig18: could not write {json_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("fig18: perf trajectory written to {json_path}");
    }
}
