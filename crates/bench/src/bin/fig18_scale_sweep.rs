//! Figure 18 (new): the scale trajectory — wall-clock, events processed,
//! and rule counts as switch count grows, on generated rings and fat-trees,
//! for both the static reference plane and the NES runtime.
//!
//! Run with: `cargo run --release -p edn-bench --bin fig18_scale_sweep`
//!
//! Environment overrides (CI smoke uses small values):
//! * `FIG18_RING_SIZES` — comma-separated ring sizes (default
//!   `4,8,16,32,64,128`);
//! * `FIG18_FATTREE_KS` — comma-separated fat-tree arities (default
//!   `4,6,8`);
//! * `FIG18_PACKETS_PER_FLOW` — datagrams per flow (default `20`);
//! * `FIG18_SEED` — workload seed (default `7`);
//! * `FIG18_CANONICAL` — when `1`, report the wall-clock column as `0` so
//!   two runs with the same seed produce byte-identical CSV.

use edn_bench::scale::{run_point, Plane, CSV_HEADER};
use edn_bench::{env_list, env_u64};
use edn_topo::{fat_tree, ring, LinkProfile, TierProfile, TrafficPattern, Workload};

fn main() {
    let ring_sizes = env_list("FIG18_RING_SIZES", &[4, 8, 16, 32, 64, 128]);
    let fat_tree_ks = env_list("FIG18_FATTREE_KS", &[4, 6, 8]);
    let seed = env_u64("FIG18_SEED", 7);
    let packets_per_flow = env_u64("FIG18_PACKETS_PER_FLOW", 20);
    let canonical = env_u64("FIG18_CANONICAL", 0) == 1;
    let workload = Workload {
        pattern: TrafficPattern::Permutation,
        seed,
        packets_per_flow,
        ..Workload::default()
    };
    println!("# Fig. 18: scale sweep — permutation traffic, seed {seed}");
    println!("# rings {ring_sizes:?}, fat-trees {fat_tree_ks:?}, {packets_per_flow} pkts/flow");
    println!("{CSV_HEADER}");
    let emit = |mut row: edn_bench::scale::SweepRow| {
        if canonical {
            row.wall_us = 0;
        }
        println!("{}", row.csv());
    };
    for &n in &ring_sizes {
        let gen = ring(n, LinkProfile::default());
        for plane in [Plane::Static, Plane::Nes] {
            emit(run_point(&gen, "ring", n, plane, &workload));
        }
    }
    for &k in &fat_tree_ks {
        let gen = fat_tree(k, TierProfile::default());
        for plane in [Plane::Static, Plane::Nes] {
            emit(run_point(&gen, "fat-tree", k, plane, &workload));
        }
    }
}
