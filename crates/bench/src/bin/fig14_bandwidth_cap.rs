//! Figure 14: the bandwidth cap (n = 10) — exactly 10 pings succeed under
//! the correct runtime (a); the uncoordinated baseline overshoots (b).
//!
//! Run with: `cargo run --release -p edn-bench --bin fig14_bandwidth_cap`

use edn_apps::{bandwidth_cap, H1, H4};
use edn_bench::{host_name, print_timeline, run_correct, run_uncoordinated};
use netsim::traffic::Ping;
use netsim::SimTime;

const CAP: u64 = 10;

fn workload() -> Vec<Ping> {
    (0..20)
        .map(|i| Ping { time: SimTime::from_millis(1_000 * i + 100), src: H1, dst: H4, id: i })
        .collect()
}

fn main() {
    let pings = workload();
    let (rows, result) = run_correct(
        bandwidth_cap::nes(CAP),
        &bandwidth_cap::spec(),
        &pings,
        SimTime::from_secs(30),
    );
    print_timeline("(a) correct (cap 10):", &rows, host_name);
    let ok = rows.iter().filter(|r| r.ok).count();
    println!("  successful pings: {ok} (the cap is enforced exactly)");
    match nes_runtime::verify_nes_run(&result) {
        Ok(()) => println!("  checker: consistent\n"),
        Err(v) => println!("  checker: VIOLATION {v}\n"),
    }

    let (rows, _) = run_uncoordinated(
        bandwidth_cap::nes(CAP),
        &bandwidth_cap::spec(),
        &pings,
        SimTime::from_millis(5_000),
        5,
        SimTime::from_secs(40),
    );
    print_timeline("(b) uncoordinated (5s delay):", &rows, host_name);
    let ok = rows.iter().filter(|r| r.ok).count();
    println!("  successful pings: {ok} — the cap is exceeded (paper saw 15 vs 10)");
}
