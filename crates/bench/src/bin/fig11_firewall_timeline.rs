//! Figure 11: the stateful firewall ping timeline, correct (a) vs
//! uncoordinated (b).
//!
//! Run with: `cargo run --release -p edn-bench --bin fig11_firewall_timeline`

use edn_apps::{firewall, H1, H4};
use edn_bench::{host_name, print_timeline, run_correct, run_uncoordinated};
use netsim::traffic::Ping;
use netsim::SimTime;

fn timeline() -> Vec<Ping> {
    let s = SimTime::from_secs;
    let mut pings = Vec::new();
    let mut id = 0;
    for t in 1..6 {
        pings.push(Ping { time: s(t), src: H4, dst: H1, id });
        id += 1;
    }
    for t in 6..10 {
        pings.push(Ping { time: s(t), src: H1, dst: H4, id });
        id += 1;
    }
    for t in 10..16 {
        pings.push(Ping { time: s(t), src: H4, dst: H1, id });
        id += 1;
    }
    pings
}

fn main() {
    let pings = timeline();
    let (rows, result) =
        run_correct(firewall::nes(), &firewall::spec(), &pings, SimTime::from_secs(20));
    print_timeline("(a) correct (event-driven consistent):", &rows, host_name);
    match nes_runtime::verify_nes_run(&result) {
        Ok(()) => println!("  checker: consistent\n"),
        Err(v) => println!("  checker: VIOLATION {v}\n"),
    }

    let (rows, _) = run_uncoordinated(
        firewall::nes(),
        &firewall::spec(),
        &pings,
        SimTime::from_millis(2_000),
        17,
        SimTime::from_secs(20),
    );
    print_timeline("(b) uncoordinated (2s delay):", &rows, host_name);
    let lost: Vec<_> = rows.iter().filter(|r| !r.ok && r.ping.src == H1).collect();
    println!(
        "  {} H1->H4 pings lost their replies — the state change did not behave as if\n  \
         caused immediately by the packet arrival at s4 (the paper's Fig. 11(b))",
        lost.len()
    );
}
