//! Figure 15: the intrusion detection system — the suspicious scan order
//! (H1 then H2) cuts off H4→H3 under the correct runtime (a); the
//! uncoordinated baseline leaves it open temporarily (b).
//!
//! Run with: `cargo run --release -p edn-bench --bin fig15_ids`

use edn_apps::{ids, H1, H2, H3, H4};
use edn_bench::{host_name, print_timeline, run_correct, run_uncoordinated};
use netsim::traffic::Ping;
use netsim::SimTime;

fn main() {
    let s = SimTime::from_secs;
    // Fig. 15(a)'s probe order: H3, H2, H1, H3, H2, H1 — reaching the
    // suspicious state — then H3 probes that must now be blocked.
    let pings = vec![
        Ping { time: s(1), src: H4, dst: H3, id: 0 },
        Ping { time: s(5), src: H4, dst: H2, id: 1 },
        Ping { time: s(9), src: H4, dst: H1, id: 2 }, // suspicious step 1
        Ping { time: s(13), src: H4, dst: H3, id: 3 },
        Ping { time: s(17), src: H4, dst: H2, id: 4 }, // suspicious step 2
        Ping { time: s(21), src: H4, dst: H1, id: 5 },
        Ping { time: s(25), src: H4, dst: H3, id: 6 }, // blocked
        Ping { time: s(29), src: H4, dst: H3, id: 7 }, // blocked
    ];
    let (rows, result) = run_correct(ids::nes(), &ids::spec(), &pings, s(40));
    print_timeline("(a) correct: the scan cuts off H3:", &rows, host_name);
    match nes_runtime::verify_nes_run(&result) {
        Ok(()) => println!("  checker: consistent\n"),
        Err(v) => println!("  checker: VIOLATION {v}\n"),
    }

    // Uncoordinated: the scan completes; the immediate H3 probe still flows.
    let pings = vec![
        Ping { time: s(1), src: H4, dst: H1, id: 0 },
        Ping { time: s(4), src: H4, dst: H2, id: 1 },
        Ping { time: SimTime::from_millis(4_200), src: H4, dst: H3, id: 2 },
        Ping { time: s(10), src: H4, dst: H3, id: 3 },
    ];
    let (rows, _) =
        run_uncoordinated(ids::nes(), &ids::spec(), &pings, SimTime::from_millis(2_000), 13, s(15));
    print_timeline(
        "(b) uncoordinated (2s delay): H3 briefly stays open after the scan:",
        &rows,
        host_name,
    );
}
