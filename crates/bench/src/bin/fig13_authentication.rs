//! Figure 13: the authentication (port-knocking) timeline, correct (a) vs
//! uncoordinated (b).
//!
//! Run with: `cargo run --release -p edn-bench --bin fig13_authentication`

use edn_apps::{authentication, H1, H2, H3, H4};
use edn_bench::{host_name, print_timeline, run_correct, run_uncoordinated};
use netsim::traffic::Ping;
use netsim::SimTime;

fn main() {
    let s = SimTime::from_secs;
    // Fig. 13(a)'s probe order: H3, H2 (both fail), H1, H3 again, H1 again,
    // H2, and finally H3.
    let pings = vec![
        Ping { time: s(1), src: H4, dst: H3, id: 0 },
        Ping { time: s(4), src: H4, dst: H2, id: 1 },
        Ping { time: s(8), src: H4, dst: H1, id: 2 },
        Ping { time: s(12), src: H4, dst: H3, id: 3 },
        Ping { time: s(16), src: H4, dst: H1, id: 4 },
        Ping { time: s(20), src: H4, dst: H2, id: 5 },
        Ping { time: s(24), src: H4, dst: H3, id: 6 },
    ];
    let (rows, result) = run_correct(authentication::nes(), &authentication::spec(), &pings, s(30));
    print_timeline("(a) correct: only the complete knock order unlocks H3:", &rows, host_name);
    match nes_runtime::verify_nes_run(&result) {
        Ok(()) => println!("  checker: consistent\n"),
        Err(v) => println!("  checker: VIOLATION {v}\n"),
    }

    // Uncoordinated: knocks complete but the H3 probe races the push.
    let pings = vec![
        Ping { time: s(1), src: H4, dst: H1, id: 0 },
        Ping { time: s(4), src: H4, dst: H2, id: 1 },
        Ping { time: SimTime::from_millis(4_200), src: H4, dst: H3, id: 2 },
    ];
    let (rows, _) = run_uncoordinated(
        authentication::nes(),
        &authentication::spec(),
        &pings,
        SimTime::from_millis(1_500),
        11,
        s(15),
    );
    print_timeline(
        "(b) uncoordinated (1.5s delay): H3 lags behind completed knocks:",
        &rows,
        host_name,
    );
}
