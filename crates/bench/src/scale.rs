//! The Fig. 18 scale harness: parametric topology sweeps.
//!
//! Each sweep point builds a generated topology, synthesizes a seeded
//! traffic matrix over it, runs the workload on a data plane — the static
//! shortest-path reference or the NES runtime hosting a generated firewall
//! — and reports sizes, rule counts, simulation work, and wall-clock time
//! as one CSV row. Everything except the wall-clock column is deterministic
//! given the seed.

use edn_obs::{MinWall, Registry, Stopwatch};
use edn_topo::{shortest_path_config, synthesize, GenTopology, Workload};
use nes_runtime::{nes_engine_with_path, StaticDataPlane};
use netkat::LookupPath;
use netsim::traffic::{udp_packet, UdpFlowSpec};
use netsim::{DataPlane, DropReason, Engine, SimParams, SimTime, SinkHosts, Stats, TraceMode};

/// Injects a sweep point's flows: streamed lazily on the single-threaded
/// engine, materialized up front when sharding is in play (the sharded
/// event loop owns its queue partitioning, and the sweep's multi-shard
/// rows exist precisely to exercise it). Both paths are byte-identical —
/// pinned by the `streaming_equivalence` differential suite.
fn inject_flows<D: DataPlane>(engine: &mut Engine<D>, flows: &[UdpFlowSpec], shards: u32) -> u64 {
    if shards <= 1 {
        edn_topo::attach_stream(engine, flows)
    } else {
        edn_topo::schedule(engine, flows)
    }
}

/// Which data plane a sweep point exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Plane {
    /// The fixed shortest-path configuration (no events, no tags).
    Static,
    /// The paper's runtime hosting a generated stateful firewall between
    /// the first and last host, with a trigger flow firing its event
    /// mid-run.
    Nes,
}

impl Plane {
    /// The CSV label.
    pub fn label(&self) -> &'static str {
        match self {
            Plane::Static => "static",
            Plane::Nes => "nes",
        }
    }
}

/// One row of the scale sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRow {
    /// Topology family (`ring`, `fat-tree`, …).
    pub topology: String,
    /// The swept parameter (ring size, fat-tree k).
    pub param: u64,
    /// Data plane exercised.
    pub plane: Plane,
    /// Switch count.
    pub switches: usize,
    /// Host count.
    pub hosts: usize,
    /// Directed link count.
    pub links: usize,
    /// Installed rules (config rules for `static`; the compiled NES
    /// breakdown total for `nes`).
    pub rules: usize,
    /// Synthesized flows.
    pub flows: usize,
    /// Scheduled datagrams.
    pub datagrams: u64,
    /// Discrete events the engine processed.
    pub events: u64,
    /// Packets delivered.
    pub deliveries: usize,
    /// Packets dropped, by [`DropReason`] (indexed by
    /// [`DropReason::index`]; the CSV names each column).
    pub drops: [u64; 4],
    /// Wall-clock time of the simulation event loop in microseconds (the
    /// `Engine::run` phase; trace materialization is not included — run
    /// measurement sweeps under `EDN_TRACE=stats` to also skip recording).
    /// When the point ran several repetitions, this is the minimum. The
    /// only non-deterministic column; zero it for byte-identical CSVs.
    pub wall_us: u64,
    /// Engine shards the point ran on. Deliberately *not* a CSV column:
    /// every other column is byte-identical across shard counts (that is
    /// the sharded engine's determinism contract, and CI `cmp`s the
    /// canonical CSVs across `EDN_SHARDS` to prove it); the JSON perf
    /// trajectory reports it.
    pub shards: u32,
    /// Median sim-time event latency (creation → fire) in µs, from the
    /// run's metric registry — `0` when `EDN_METRICS=off`. JSON-only:
    /// deterministic, but gated on the metrics level, and the CSV must be
    /// byte-identical across levels.
    pub latency_p50_us: u64,
    /// 99th-percentile sim-time event latency in µs (`0` when metrics are
    /// off). JSON-only, like [`latency_p50_us`](SweepRow::latency_p50_us).
    pub latency_p99_us: u64,
    /// Packet-arena slot high-water (per-shard max; `0` when metrics are
    /// off). JSON-only; shard-scoped, so it varies with the shard count.
    pub arena_hw: u64,
    /// Online-checker obligation high-water (`0` without a checker or
    /// with metrics off). JSON-only.
    pub obligations_hw: u64,
}

/// Pulls the [`SweepRow`] metric columns out of a finished run's
/// registry: `(latency p50 µs, latency p99 µs, arena slot high-water,
/// obligation high-water)`. All zero when metrics were off.
pub fn metric_columns(reg: &Registry) -> (u64, u64, u64, u64) {
    let (p50, p99) = match reg.histogram("engine.event_latency_us") {
        Some(h) => (h.quantile(1, 2), h.quantile(99, 100)),
        None => (0, 0),
    };
    (
        p50,
        p99,
        reg.gauge("arena.slots_hw").unwrap_or(0),
        reg.gauge("checker.obligations_hw").unwrap_or(0),
    )
}

/// The CSV header matching [`SweepRow::csv`].
pub const CSV_HEADER: &str = "topology,param,plane,switches,hosts,links,rules,flows,datagrams,\
                              events,deliveries,drops_no_rule,drops_dead_end,drops_queue_full,\
                              drops_link_down,wall_us";

impl SweepRow {
    /// Nanoseconds of wall-clock per engine event — the per-event cost the
    /// perf trajectory (`BENCH_fig18.json`) tracks.
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.wall_us as f64 * 1_000.0 / self.events as f64
    }

    /// Renders the row as a CSV line (no trailing newline).
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.topology,
            self.param,
            self.plane.label(),
            self.switches,
            self.hosts,
            self.links,
            self.rules,
            self.flows,
            self.datagrams,
            self.events,
            self.deliveries,
            self.drops[DropReason::NoRule.index()],
            self.drops[DropReason::DeadEnd.index()],
            self.drops[DropReason::QueueFull.index()],
            self.drops[DropReason::LinkDown.index()],
            self.wall_us,
        )
    }
}

/// Runs one sweep point: `workload` over `gen` on the chosen plane,
/// dispatching table lookups through `path`, recording (or not) the
/// trace per `mode`, and running the event loop on `shards` engine
/// shards ([`Engine::with_shards`]).
///
/// Every column except `wall_us` is independent of `path`, `mode`, and
/// `shards` — that is the equivalence the plumbing/lookup differential
/// tests (and the CI per-path, per-mode, per-shard-count CSV
/// comparisons) pin down. The event queue implementation and packet path
/// come from the environment (`EDN_QUEUE`, `EDN_PACKETS`), which CI also
/// sweeps.
///
/// `reps` rebuilds and re-runs the whole point that many times and
/// reports the **minimum** wall-clock — a single run of a sub-second
/// point is scheduler-noise-limited, and the minimum is the standard
/// robust estimator for "how fast can this go". All deterministic
/// columns come from the first repetition (they are identical across
/// repetitions by construction).
///
/// The run horizon is the last synthesized flow's end plus ten simulated
/// seconds of drain time, so the event queue always empties — whatever
/// flow counts and rates the workload asks for.
#[allow(clippy::too_many_arguments)]
pub fn run_point(
    gen: &GenTopology,
    topology: &str,
    param: u64,
    plane: Plane,
    workload: &Workload,
    path: LookupPath,
    mode: TraceMode,
    shards: u32,
    reps: u32,
) -> SweepRow {
    let flows = synthesize(gen, workload);
    let last_end = flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO);
    let horizon = last_end + SimTime::from_secs(10);
    let mut first: Option<(usize, u64, Stats, Registry)> = None;
    let mut wall = MinWall::new();
    for _ in 0..reps.max(1) {
        let (rules, datagrams, stats, metrics): (usize, u64, Stats, Registry) = match plane {
            Plane::Static => {
                let config = shortest_path_config(gen);
                let rules = config.rule_count();
                let mut engine = Engine::new(
                    gen.sim().clone(),
                    SimParams::default(),
                    StaticDataPlane::with_path(config, path),
                    Box::new(SinkHosts),
                )
                .with_trace_mode(mode)
                .with_shards(shards);
                let datagrams = inject_flows(&mut engine, &flows, shards);
                let sw = Stopwatch::start();
                engine.run(horizon);
                wall.record(sw.elapsed_us());
                let result = engine.finish();
                (rules, datagrams, result.stats, result.metrics)
            }
            Plane::Nes => {
                let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
                let nes = edn_apps::generated::firewall_nes(gen, inside, outside);
                let mut engine = nes_engine_with_path(
                    nes,
                    gen.sim().clone(),
                    SimParams::default(),
                    false,
                    Box::new(SinkHosts),
                    path,
                )
                .with_trace_mode(mode)
                .with_shards(shards);
                let datagrams = inject_flows(&mut engine, &flows, shards);
                // A trigger datagram from `inside` fires the firewall's
                // event mid-run, so the sweep exercises an actual
                // configuration update at every scale.
                engine.inject_at(
                    SimTime::from_millis(5),
                    inside,
                    udp_packet(inside, outside, u64::MAX, 0),
                );
                let sw = Stopwatch::start();
                engine.run(horizon);
                wall.record(sw.elapsed_us());
                let result = engine.finish();
                let rules = result.dataplane.compiled().rule_breakdown().total();
                (rules, datagrams + 1, result.stats, result.metrics)
            }
        };
        if first.is_none() {
            first = Some((rules, datagrams, stats, metrics));
        }
    }
    let (rules, datagrams, stats, metrics) = first.expect("at least one repetition");
    let (latency_p50_us, latency_p99_us, arena_hw, obligations_hw) = metric_columns(&metrics);
    SweepRow {
        topology: topology.to_string(),
        param,
        plane,
        switches: gen.switch_count(),
        hosts: gen.host_count(),
        links: gen.link_count(),
        rules,
        flows: flows.len(),
        datagrams,
        events: stats.events_processed,
        deliveries: stats.deliveries.len(),
        drops: stats.dropped,
        wall_us: wall.best(),
        shards,
        latency_p50_us,
        latency_p99_us,
        arena_hw,
        obligations_hw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_topo::{fat_tree, ring, LinkProfile, TierProfile, TrafficPattern};

    fn small_workload() -> Workload {
        Workload {
            pattern: TrafficPattern::Permutation,
            seed: 7,
            packets_per_flow: 3,
            ..Workload::default()
        }
    }

    #[test]
    fn sweep_point_is_deterministic_modulo_wall_clock() {
        let gen = ring(8, LinkProfile::default());
        for plane in [Plane::Static, Plane::Nes] {
            for path in [LookupPath::Linear, LookupPath::Indexed] {
                let mut a = run_point(
                    &gen,
                    "ring",
                    8,
                    plane,
                    &small_workload(),
                    path,
                    TraceMode::Full,
                    1,
                    1,
                );
                let mut b = run_point(
                    &gen,
                    "ring",
                    8,
                    plane,
                    &small_workload(),
                    path,
                    TraceMode::Full,
                    1,
                    1,
                );
                a.wall_us = 0;
                b.wall_us = 0;
                assert_eq!(a, b, "{} rows differ", plane.label());
                assert!(a.events > 0 && a.deliveries > 0);
            }
        }
    }

    #[test]
    fn lookup_paths_and_trace_modes_produce_identical_rows() {
        let gen = ring(8, LinkProfile::default());
        for plane in [Plane::Static, Plane::Nes] {
            let mut reference = run_point(
                &gen,
                "ring",
                8,
                plane,
                &small_workload(),
                LookupPath::Linear,
                TraceMode::Full,
                1,
                1,
            );
            reference.wall_us = 0;
            for path in [LookupPath::Linear, LookupPath::Indexed] {
                for mode in [TraceMode::Full, TraceMode::StatsOnly] {
                    let mut row =
                        run_point(&gen, "ring", 8, plane, &small_workload(), path, mode, 1, 1);
                    row.wall_us = 0;
                    assert_eq!(
                        row,
                        reference,
                        "{} rows differ on {}/{}",
                        plane.label(),
                        path.label(),
                        mode.label()
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_rows_match_single_threaded() {
        let gen = ring(8, LinkProfile::default());
        for plane in [Plane::Static, Plane::Nes] {
            let mut solo = run_point(
                &gen,
                "ring",
                8,
                plane,
                &small_workload(),
                LookupPath::Indexed,
                TraceMode::Full,
                1,
                1,
            );
            // Two repetitions must not change any deterministic column
            // either (reps only tighten the wall-clock estimate).
            let mut sharded = run_point(
                &gen,
                "ring",
                8,
                plane,
                &small_workload(),
                LookupPath::Indexed,
                TraceMode::Full,
                2,
                2,
            );
            assert_eq!(sharded.shards, 2);
            solo.wall_us = 0;
            solo.shards = 0;
            // Shard-scoped: legitimately varies with the shard count.
            solo.arena_hw = 0;
            sharded.wall_us = 0;
            sharded.shards = 0;
            sharded.arena_hw = 0;
            assert_eq!(sharded, solo, "{} rows differ across shard counts", plane.label());
        }
    }

    #[test]
    fn fat_tree_point_delivers_traffic_on_both_planes() {
        let gen = fat_tree(4, TierProfile::default());
        let stat = run_point(
            &gen,
            "fat-tree",
            4,
            Plane::Static,
            &small_workload(),
            LookupPath::Indexed,
            TraceMode::Full,
            1,
            1,
        );
        assert_eq!(stat.switches, 20);
        assert_eq!(stat.rules, 20 * 16);
        assert_eq!(stat.flows, 16);
        assert!(stat.deliveries > 0 && stat.events > stat.datagrams);
        let nes = run_point(
            &gen,
            "fat-tree",
            4,
            Plane::Nes,
            &small_workload(),
            LookupPath::Indexed,
            TraceMode::Full,
            1,
            1,
        );
        assert!(nes.deliveries > 0);
        assert!(nes.rules > stat.rules, "tagged configs outweigh one static config");
    }

    #[test]
    fn csv_row_shape_matches_header() {
        let gen = ring(4, LinkProfile::default());
        let row = run_point(
            &gen,
            "ring",
            4,
            Plane::Static,
            &small_workload(),
            LookupPath::Linear,
            TraceMode::Full,
            1,
            1,
        );
        assert_eq!(row.csv().split(',').count(), CSV_HEADER.split(',').count());
        assert!(row.ns_per_event() > 0.0);
    }
}
