//! The bandwidth cap (Figs. 8(d)/9(d)).
//!
//! H1 may contact H4, and H4 may answer, until `n` outgoing packets have
//! been seen at switch 4 — then the incoming path is cut. The ETS is a
//! chain of `n + 2` states whose transitions are *renamed copies* of the
//! same arrival event (Section 3.1's renaming discipline).

use edn_core::NetworkEventStructure;
#[cfg(test)]
use netkat::Loc;
use stateful_netkat::{build_ets, parse, NetworkSpec, SPolicy};

use crate::scenario::host_env;

/// Generates the Fig. 9(d) program source for cap `n`.
///
/// State `[k]` (for `k ≤ n`) advances to `[k+1]` on each outgoing packet;
/// state `[n+1]` still forwards outgoing traffic but drops the incoming
/// path.
pub fn source(n: u64) -> String {
    let mut clauses = Vec::new();
    for k in 0..=n {
        clauses.push(format!("state=[{k}]; (1:1)->(4:1)<state<-[{}]>", k + 1));
    }
    clauses.push(format!("state=[{}]; (1:1)->(4:1)", n + 1));
    format!(
        "pt=2 & ip_dst=H4; pt<-1; ({}); pt<-2 \
         + pt=2 & ip_dst=H1; state!=[{}]; pt<-1; (4:1)->(1:1); pt<-2",
        clauses.join(" + "),
        n + 1
    )
}

/// Parses the bandwidth-cap program for cap `n`.
///
/// # Panics
///
/// Panics if the generated source fails to parse (a bug).
pub fn program(n: u64) -> SPolicy {
    parse(&source(n), &host_env()).expect("generated bandwidth-cap program parses")
}

/// The topology (same as the firewall, Fig. 8(a)/(d)).
pub fn spec() -> NetworkSpec {
    crate::firewall::spec()
}

/// Builds the bandwidth-cap NES for cap `n`: a chain of `n + 2` event-sets.
///
/// # Panics
///
/// Panics if compilation fails (a bug: the generated program is
/// well-formed).
pub fn nes(n: u64) -> NetworkEventStructure {
    build_ets(&program(n), &[0], &spec())
        .expect("bandwidth cap compiles")
        .to_nes()
        .expect("bandwidth cap ETS is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sim_topology, H1, H4};
    use nes_runtime::{nes_engine, uncoordinated_engine, verify_nes_run};
    use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
    use netsim::{SimParams, SimTime};

    #[test]
    fn nes_is_a_renamed_chain() {
        let nes = nes(3);
        // Cap 3: states [0..4], 4 renamed events, 5 event-sets.
        assert_eq!(nes.events().len(), 4);
        assert_eq!(nes.event_sets().len(), 5);
        // All renamed copies share predicate and location.
        for w in nes.events().windows(2) {
            assert_eq!(w[0].pred, w[1].pred);
            assert_eq!(w[0].loc, w[1].loc);
        }
        assert_eq!(nes.events()[0].loc, Loc::new(4, 1));
        assert!(nes.is_locally_determined(5));
    }

    /// Fig. 14(a): with cap 10, exactly 10 pings succeed.
    #[test]
    fn exactly_ten_pings_succeed() {
        let n = 10;
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine =
            nes_engine(nes(n), topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        let pings: Vec<Ping> = (0..15)
            .map(|i| Ping { time: SimTime::from_millis(100 * i + 10), src: H1, dst: H4, id: i })
            .collect();
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        let succeeded =
            ping_outcomes(&pings, &result.stats).iter().filter(|o| o.replied.is_some()).count();
        assert_eq!(succeeded, 10, "exactly the cap succeeds");
        verify_nes_run(&result).expect("bandwidth-cap run is consistent");
    }

    /// Fig. 14(b): the uncoordinated baseline overshoots the cap.
    #[test]
    fn uncoordinated_overshoots_the_cap() {
        let n = 10;
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine = uncoordinated_engine(
            nes(n),
            topo,
            SimParams::default(),
            SimTime::from_millis(700),
            5,
            Box::new(ScenarioHosts::new()),
        );
        let pings: Vec<Ping> = (0..20)
            .map(|i| Ping { time: SimTime::from_millis(100 * i + 10), src: H1, dst: H4, id: i })
            .collect();
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        let succeeded =
            ping_outcomes(&pings, &result.stats).iter().filter(|o| o.replied.is_some()).count();
        assert!(succeeded > 10, "stale configs let extra pings through, got {succeeded}");
    }

    #[test]
    fn source_generation_shape() {
        let src = source(2);
        assert!(src.contains("state=[0]"));
        assert!(src.contains("state=[3]; (1:1)->(4:1)"));
        assert!(src.contains("state!=[3]"));
    }
}
