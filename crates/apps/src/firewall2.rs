//! A two-flow stateful firewall: the Fig. 3(a) *diamond* as a real
//! application.
//!
//! Two internal hosts H1 (at s1) and H2 (at s2) sit behind the gateway s4
//! where the external host H4 lives. Each internal host independently
//! unlocks its own return path by contacting H4 — one `state` slot per
//! host, so the two events are *compatible* and may occur in either order
//! (different switches may even observe them in different orders, which is
//! exactly what event structures permit without coordination).

use edn_core::NetworkEventStructure;
use netkat::Loc;
use stateful_netkat::{build_ets, parse, NetworkSpec, SPolicy};

use crate::scenario::host_env;

/// The program: per-host outgoing clauses stamp their own state slot;
/// return clauses are guarded by it.
pub const SOURCE: &str = "\
    pt=2 & ip_dst=H4; (state(0)=0; pt<-1; (1:1)->(4:1)<state(0)<-1> \
                       + state(0)!=0; pt<-1; (1:1)->(4:1)); pt<-2 \
    + pt=2 & ip_dst=H4; (state(1)=0; pt<-1; (2:1)->(4:3)<state(1)<-1> \
                         + state(1)!=0; pt<-1; (2:1)->(4:3)); pt<-2 \
    + pt=2 & ip_dst=H1; state(0)=1; pt<-1; (4:1)->(1:1); pt<-2 \
    + pt=2 & ip_dst=H2; state(1)=1; pt<-3; (4:3)->(2:1); pt<-2";

/// Parses the two-flow firewall.
///
/// # Panics
///
/// Panics if the built-in source fails to parse (a bug).
pub fn program() -> SPolicy {
    parse(SOURCE, &host_env()).expect("built-in two-flow firewall parses")
}

/// Topology: H1 — s1 — s4 — H4, H2 — s2 — s4 (the learning-switch shape).
pub fn spec() -> NetworkSpec {
    NetworkSpec::new([1, 2, 4])
        .host(crate::scenario::H1, Loc::new(1, 2))
        .host(crate::scenario::H2, Loc::new(2, 2))
        .host(crate::scenario::H4, Loc::new(4, 2))
        .bilink(Loc::new(1, 1), Loc::new(4, 1))
        .bilink(Loc::new(2, 1), Loc::new(4, 3))
}

/// Builds the diamond NES: four event-sets
/// `∅, {e₁}, {e₂}, {e₁,e₂}` with both event orders allowed.
///
/// # Panics
///
/// Panics if compilation fails (a bug: the program is well-formed).
pub fn nes() -> NetworkEventStructure {
    build_ets(&program(), &[0, 0], &spec())
        .expect("two-flow firewall compiles")
        .to_nes()
        .expect("two-flow firewall ETS is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sim_topology, H1, H2, H4};
    use edn_core::{EventId, EventSet};
    use nes_runtime::{nes_engine, verify_nes_run};
    use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
    use netsim::{SimParams, SimTime};

    #[test]
    fn nes_is_the_fig3a_diamond() {
        let nes = nes();
        assert_eq!(nes.events().len(), 2);
        assert_eq!(nes.event_sets().len(), 4, "∅, {{e1}}, {{e2}}, {{e1,e2}}");
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        // Both orders allowed, both events independently enabled.
        assert!(nes.structure().enabled(EventSet::empty(), e0));
        assert!(nes.structure().enabled(EventSet::empty(), e1));
        assert!(nes.structure().consistent(EventSet::from_iter([e0, e1])));
        assert!(nes.is_locally_determined(4));
        // The events live at different switch-4 ports (per-flow links).
        assert_eq!(nes.events()[0].loc.sw, 4);
        assert_eq!(nes.events()[1].loc.sw, 4);
        assert_ne!(nes.events()[0].loc, nes.events()[1].loc);
    }

    /// Each flow unlocks independently, in either order, and the run
    /// verifies whichever interleaving happens.
    #[test]
    fn flows_unlock_independently() {
        for (first, second) in [(H1, H2), (H2, H1)] {
            let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
            let mut engine = nes_engine(
                nes(),
                topo,
                SimParams::default(),
                false,
                Box::new(ScenarioHosts::new()),
            );
            let s = SimTime::from_millis;
            let pings = vec![
                // Both return paths closed.
                Ping { time: s(10), src: H4, dst: H1, id: 1 },
                Ping { time: s(20), src: H4, dst: H2, id: 2 },
                // `first` opens its flow.
                Ping { time: s(100), src: first, dst: H4, id: 3 },
                // Only `first`'s return path is open.
                Ping { time: s(200), src: H4, dst: first, id: 4 },
                Ping { time: s(210), src: H4, dst: second, id: 5 },
                // `second` opens too; both work.
                Ping { time: s(300), src: second, dst: H4, id: 6 },
                Ping { time: s(400), src: H4, dst: second, id: 7 },
                Ping { time: s(410), src: H4, dst: first, id: 8 },
            ];
            schedule_pings(&mut engine, &pings);
            let result = engine.run_until(SimTime::from_secs(2));
            let o = ping_outcomes(&pings, &result.stats);
            assert!(!o[0].request_delivered && !o[1].request_delivered, "closed initially");
            assert!(o[2].replied.is_some(), "first flow opens");
            assert!(o[3].replied.is_some(), "first return path open");
            assert!(!o[4].request_delivered, "second still closed");
            assert!(o[5].replied.is_some(), "second flow opens");
            assert!(o[6].replied.is_some() && o[7].replied.is_some(), "both open");
            verify_nes_run(&result)
                .unwrap_or_else(|v| panic!("order {first}->{second} consistent: {v}"));
        }
    }

    /// Near-simultaneous triggers: both events fire concurrently at
    /// different ports of s4 — the diamond needs no coordination, and the
    /// checker accepts either interleaving.
    #[test]
    fn simultaneous_triggers_are_fine() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine =
            nes_engine(nes(), topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        let pings = vec![
            Ping { time: SimTime::from_millis(10), src: H1, dst: H4, id: 1 },
            Ping { time: SimTime::from_millis(10), src: H2, dst: H4, id: 2 },
            Ping { time: SimTime::from_millis(100), src: H4, dst: H1, id: 3 },
            Ping { time: SimTime::from_millis(100), src: H4, dst: H2, id: 4 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o.iter().all(|p| p.replied.is_some()), "everything flows");
        assert_eq!(result.dataplane.fired_sequence().len(), 2, "both events fired");
        verify_nes_run(&result).expect("concurrent diamond run is consistent");
    }
}
