//! The stateful firewall (Figs. 8(a)/9(a)).
//!
//! Host H1 (inside, at switch 1) may always contact H4 (outside, at
//! switch 4); H4 may send to H1 only after H1 has contacted it. The single
//! event is the arrival of H1's traffic at switch 4.

use edn_core::NetworkEventStructure;
use netkat::Loc;
use stateful_netkat::{build_ets, parse, NetworkSpec, SPolicy};

use crate::scenario::host_env;

/// The Fig. 9(a) program source (ASCII syntax).
pub const SOURCE: &str = "\
    pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
                              + state!=[0]; (1:1)->(4:1)); pt<-2 \
    + pt=2 & ip_dst=H1; state=[1]; pt<-1; (4:1)->(1:1); pt<-2";

/// Parses the firewall program.
///
/// # Panics
///
/// Panics if the built-in source fails to parse (a bug).
pub fn program() -> SPolicy {
    parse(SOURCE, &host_env()).expect("built-in firewall program parses")
}

/// The Fig. 8(a) topology: H1 — s1 — s4 — H4.
pub fn spec() -> NetworkSpec {
    NetworkSpec::new([1, 4])
        .host(crate::scenario::H1, Loc::new(1, 2))
        .host(crate::scenario::H4, Loc::new(4, 2))
        .bilink(Loc::new(1, 1), Loc::new(4, 1))
}

/// Builds the firewall NES:
/// `{E₀ = ∅ → E₁ = {(dst=H4, 4:1)}}` with `g(E₀) = C[0]`, `g(E₁) = C[1]`.
///
/// # Panics
///
/// Panics if compilation fails (a bug: the program is well-formed).
pub fn nes() -> NetworkEventStructure {
    build_ets(&program(), &[0], &spec())
        .expect("firewall compiles")
        .to_nes()
        .expect("firewall ETS is well-formed")
}

/// The firewall generalized to an arbitrary generated topology: same
/// semantics as [`nes`] with `inside`/`outside` in place of H1/H4, built
/// from shortest-path flow tables instead of the Fig. 9(a) program (see
/// [`crate::generated::firewall_nes`]).
///
/// # Panics
///
/// Panics if the ids are not two distinct, mutually reachable hosts of
/// `topo`.
pub fn nes_on(topo: &edn_topo::GenTopology, inside: u64, outside: u64) -> NetworkEventStructure {
    crate::generated::firewall_nes(topo, inside, outside)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sim_topology, H1, H4};
    use edn_core::EventSet;
    use nes_runtime::{nes_engine, uncoordinated_engine, verify_nes_run, CompiledNes};
    use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
    use netsim::{SimParams, SimTime};

    #[test]
    fn nes_shape_matches_the_paper() {
        let nes = nes();
        assert_eq!(nes.events().len(), 1);
        assert_eq!(nes.event_sets().len(), 2);
        let e = &nes.events()[0];
        assert_eq!(e.loc, Loc::new(4, 1));
        assert!(nes.is_locally_determined(4));
        // Config sizes: the {e0} config strictly extends the initial one.
        let c0 = nes.config(EventSet::empty());
        let c1 = nes.config(EventSet::singleton(nes.events()[0].id));
        assert!(c1.rule_count() >= c0.rule_count());
    }

    /// The paper's Fig. 11(a) behaviour: H4→H1 fails, H1→H4 succeeds, then
    /// H4→H1 succeeds — and the whole run passes the Definition 6 checker.
    #[test]
    fn correct_runtime_behaviour() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine =
            nes_engine(nes(), topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        let pings = vec![
            Ping { time: SimTime::from_millis(10), src: H4, dst: H1, id: 1 },
            Ping { time: SimTime::from_millis(100), src: H1, dst: H4, id: 2 },
            Ping { time: SimTime::from_millis(200), src: H4, dst: H1, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(!o[0].request_delivered, "H4->H1 blocked before the event");
        assert!(o[1].replied.is_some(), "H1->H4 answered");
        assert!(o[2].replied.is_some(), "H4->H1 allowed after the event");
        verify_nes_run(&result).expect("firewall run is event-driven consistent");
    }

    /// The Fig. 11(b) pathology: under the uncoordinated baseline the
    /// *reply* to H1's own ping is dropped (the SYN-ACK problem from the
    /// introduction).
    #[test]
    fn uncoordinated_drops_the_reply() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine = uncoordinated_engine(
            nes(),
            topo,
            SimParams::default(),
            SimTime::from_millis(1000),
            7,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![Ping { time: SimTime::from_millis(10), src: H1, dst: H4, id: 1 }];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o[0].request_delivered, "the request goes through");
        assert!(o[0].replied.is_none(), "the reply dies against the stale config");
    }

    #[test]
    fn rule_footprint_is_small() {
        let compiled = CompiledNes::compile(nes());
        let b = compiled.rule_breakdown();
        // The paper reports 18 rules; our compiler differs in absolute
        // numbers but stays the same order of magnitude.
        assert!(b.total() >= 6 && b.total() <= 40, "got {b}");
    }
}
