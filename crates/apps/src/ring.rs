//! The synthetic ring application (Section 5.2).
//!
//! `2·diameter` switches form a ring; every switch hosts one end host.
//! Initially all traffic is forwarded clockwise; when switch 1 sees a
//! marked packet from its host (the event), the configuration flips to
//! counterclockwise. H1 (at switch 1) and H2 (at the opposite switch,
//! `diameter + 1` hops away) are the measurement endpoints of Fig. 16.
//!
//! Unlike the case studies, the ring NES is built directly from raw flow
//! tables — the paper likewise generates these programs automatically.

use edn_core::{Config, Event, EventId, EventSet, EventStructure, NetworkEventStructure};
use netkat::{Action, ActionSet, Field, FlowTable, Loc, Match, Packet, Rule};
use netsim::{LinkSpec, SimTime, SimTopology};

/// Port 1: clockwise neighbour. Port 2: counterclockwise. Port 3: host.
const CW: u64 = 1;
const CCW: u64 = 2;
const HOST_PORT: u64 = 3;

/// The VLAN value marking the reroute trigger packet.
pub const TRIGGER_VLAN: u64 = 99;

/// The host attached to ring switch `i` (switches are `1..=n`).
pub fn host(i: u64) -> u64 {
    100 + i
}

/// A ring instance of the given diameter (H1-to-H2 distance).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ring {
    /// Distance from H1 to H2 (the paper sweeps 2–8).
    pub diameter: u64,
}

impl Ring {
    /// Creates a ring; `diameter ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `diameter == 0`.
    pub fn new(diameter: u64) -> Ring {
        assert!(diameter >= 1, "diameter must be at least 1");
        Ring { diameter }
    }

    /// Number of switches (`2 · diameter`).
    pub fn switch_count(&self) -> u64 {
        2 * self.diameter
    }

    /// The measurement source host (at switch 1).
    pub fn h1(&self) -> u64 {
        host(1)
    }

    /// The measurement destination host (at the opposite switch).
    pub fn h2(&self) -> u64 {
        host(self.diameter + 1)
    }

    fn clockwise_next(&self, sw: u64) -> u64 {
        sw % self.switch_count() + 1
    }

    /// Clockwise hop distance from `from` to `to`.
    fn cw_distance(&self, from: u64, to: u64) -> u64 {
        let n = self.switch_count();
        (to + n - from) % n
    }

    /// Builds a shortest-path configuration: each destination is reached in
    /// whichever direction is shorter; exact ties (destinations at distance
    /// `diameter`, like H1↔H2) break clockwise when `clockwise` is set and
    /// counterclockwise otherwise.
    ///
    /// Only the tie-broken flows change when the event flips the direction
    /// — neighbour traffic always takes its one-hop shortest path, which is
    /// what lets the Fig. 16(b) experiment measure hop-by-hop digest
    /// propagation.
    pub fn config(&self, clockwise: bool) -> Config {
        let n = self.switch_count();
        let mut config = Config::new();
        for sw in 1..=n {
            let mut rules = Vec::new();
            for dst_sw in 1..=n {
                let cw_dist = self.cw_distance(sw, dst_sw);
                let ccw_dist = n - cw_dist;
                let out = if dst_sw == sw {
                    HOST_PORT
                } else if cw_dist < ccw_dist || (cw_dist == ccw_dist && clockwise) {
                    CW
                } else {
                    CCW
                };
                rules.push(Rule::new(
                    Match::new().with(Field::IpDst, host(dst_sw)),
                    ActionSet::single(Action::assign(Field::Port, out)),
                ));
            }
            config.install(sw, FlowTable::from_rules(rules));
            config.add_host(host(sw), Loc::new(sw, HOST_PORT));
            let next = self.clockwise_next(sw);
            config.add_link(Loc::new(sw, CW), Loc::new(next, CCW));
            config.add_link(Loc::new(next, CCW), Loc::new(sw, CW));
        }
        config
    }

    /// Builds the two-state NES: clockwise until the trigger event at
    /// switch 1's host port, then counterclockwise.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant failure.
    pub fn nes(&self) -> NetworkEventStructure {
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(
                e0,
                netkat::Pred::test(Field::Vlan, TRIGGER_VLAN),
                Loc::new(1, HOST_PORT),
            )],
            [EventSet::singleton(e0)],
        );
        NetworkEventStructure::new(
            es,
            [(EventSet::empty(), self.config(true)), (EventSet::singleton(e0), self.config(false))],
        )
        .expect("both event-sets have configurations")
    }

    /// The simulation topology with the given link latency/capacity.
    pub fn sim_topology(&self, latency: SimTime, capacity: Option<u64>) -> SimTopology {
        let n = self.switch_count();
        let mut topo = SimTopology::new(1..=n);
        for sw in 1..=n {
            topo = topo.host(host(sw), Loc::new(sw, HOST_PORT));
            let next = self.clockwise_next(sw);
            topo = topo
                .link(LinkSpec {
                    src: Loc::new(sw, CW),
                    dst: Loc::new(next, CCW),
                    latency,
                    capacity,
                })
                .link(LinkSpec {
                    src: Loc::new(next, CCW),
                    dst: Loc::new(sw, CW),
                    latency,
                    capacity,
                });
        }
        topo
    }

    /// The trigger packet H1 injects to flip the ring direction.
    pub fn trigger_packet(&self) -> Packet {
        Packet::new()
            .with(Field::IpSrc, self.h1())
            .with(Field::IpDst, self.h2())
            .with(Field::Vlan, TRIGGER_VLAN)
            .with(Field::IpProto, netsim::traffic::PROTO_UDP)
    }

    /// Hop count from H1 to H2 in each direction (clockwise, ccw).
    pub fn path_lengths(&self) -> (u64, u64) {
        let cw = self.cw_distance(1, self.diameter + 1);
        (cw, self.switch_count() - cw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nes_runtime::{nes_engine, verify_nes_run, StaticDataPlane};
    use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
    use netsim::{Engine, SimParams};

    #[test]
    fn geometry() {
        let ring = Ring::new(4);
        assert_eq!(ring.switch_count(), 8);
        assert_eq!(ring.h1(), 101);
        assert_eq!(ring.h2(), 105);
        assert_eq!(ring.path_lengths(), (4, 4));
        let r3 = Ring::new(3);
        assert_eq!(r3.path_lengths(), (3, 3));
    }

    #[test]
    fn configs_route_all_pairs() {
        let ring = Ring::new(2);
        for clockwise in [true, false] {
            let config = ring.config(clockwise);
            assert_eq!(config.switches().count(), 4);
            // Every switch has one rule per destination.
            for sw in 1..=4 {
                assert_eq!(config.table(sw).unwrap().len(), 4);
            }
        }
    }

    #[test]
    fn static_plane_delivers_clockwise() {
        let ring = Ring::new(3);
        let topo = ring.sim_topology(SimTime::from_micros(50), None);
        let mut engine = Engine::new(
            topo,
            SimParams::default(),
            StaticDataPlane::new(ring.config(true)),
            Box::new(ScenarioHosts::new()),
        );
        let pings =
            vec![Ping { time: SimTime::from_millis(1), src: ring.h1(), dst: ring.h2(), id: 1 }];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(1));
        assert!(ping_outcomes(&pings, &result.stats)[0].replied.is_some());
    }

    #[test]
    fn reroute_flips_direction_and_stays_consistent() {
        let ring = Ring::new(3);
        let topo = ring.sim_topology(SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            ring.nes(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![
            Ping { time: SimTime::from_millis(1), src: ring.h1(), dst: ring.h2(), id: 1 },
            Ping { time: SimTime::from_millis(200), src: ring.h1(), dst: ring.h2(), id: 2 },
        ];
        schedule_pings(&mut engine, &pings);
        engine.inject_at(SimTime::from_millis(100), ring.h1(), ring.trigger_packet());
        let result = engine.run_until(SimTime::from_secs(2));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o[0].replied.is_some(), "clockwise ping succeeds");
        assert!(o[1].replied.is_some(), "counterclockwise ping succeeds after flip");
        verify_nes_run(&result).expect("ring reroute run is consistent");
        // The event fired exactly once.
        assert_eq!(result.dataplane.fired_sequence().len(), 1);
    }

    #[test]
    fn trigger_reaches_h2_too() {
        // The trigger is data traffic: it must itself be delivered
        // (clockwise — stamped before the flip).
        let ring = Ring::new(2);
        let topo = ring.sim_topology(SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            ring.nes(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        engine.inject_at(SimTime::from_millis(1), ring.h1(), ring.trigger_packet());
        let result = engine.run_until(SimTime::from_secs(1));
        assert_eq!(result.stats.deliveries.len(), 1);
        assert_eq!(result.stats.deliveries[0].host, ring.h2());
    }
}

#[cfg(test)]
mod generator_agreement {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The `edn-topo` ring generator reproduces the hand-built Section
        /// 5.2 ring exactly — same switches, same port conventions, links in
        /// the same order, hosts at the same attachment points (ids differ:
        /// the generator numbers hosts from `HOST_BASE`).
        #[test]
        fn generated_ring_matches_hand_built(diameter in 1u64..=8) {
            let hand = Ring::new(diameter).sim_topology(SimTime::from_micros(50), None);
            let gen = edn_topo::ring(
                2 * diameter,
                edn_topo::LinkProfile::new(SimTime::from_micros(50)),
            );
            prop_assert_eq!(gen.sim().switches(), hand.switches());
            prop_assert_eq!(gen.sim().links(), hand.links());
            prop_assert_eq!(gen.sim().host_latency, hand.host_latency);
            let gen_locs: Vec<netkat::Loc> = gen.sim().hosts().map(|(_, l)| l).collect();
            let hand_locs: Vec<netkat::Loc> = hand.hosts().map(|(_, l)| l).collect();
            prop_assert_eq!(gen_locs, hand_locs);
        }

        /// And the 4-node case agrees in routing too: the generated ring's
        /// shortest-path config gives every switch one rule per host, like
        /// `Ring::config`.
        #[test]
        fn generated_ring_routes_all_pairs(diameter in 1u64..=4) {
            let n = 2 * diameter;
            let gen = edn_topo::ring(n, edn_topo::LinkProfile::default());
            let config = edn_topo::shortest_path_config(&gen);
            for sw in 1..=n {
                prop_assert_eq!(config.table(sw).unwrap().len(), n as usize);
            }
        }
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use nes_runtime::{nes_engine, verify_nes_run};
    use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
    use netsim::{DropReason, SimParams, SimTime};

    /// The paper's "link failure recovery" application pattern: the
    /// clockwise path loses a link; the operator's trigger packet flips the
    /// ring to counterclockwise forwarding, restoring connectivity — and
    /// the whole episode is still event-driven consistent.
    #[test]
    fn reroute_recovers_from_a_link_failure() {
        let ring = Ring::new(3);
        let topo = ring.sim_topology(SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            ring.nes(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        // The clockwise H1->H2 path uses switches 1..=4; cut the 2->3
        // direction (a unidirectional fibre failure). After the flip,
        // requests go counterclockwise (1->6->5->4) and replies come back
        // 4->3->2->1 over the *healthy* 3->2 direction.
        engine.fail_link_at(SimTime::from_millis(500), Loc::new(2, 1), Loc::new(3, 2));
        let pings = vec![
            // Healthy clockwise ping.
            Ping { time: SimTime::from_millis(1), src: ring.h1(), dst: ring.h2(), id: 1 },
            // After the cut: the clockwise path is dead.
            Ping { time: SimTime::from_millis(600), src: ring.h1(), dst: ring.h2(), id: 2 },
            // After the operator's reroute: the counterclockwise path works.
            Ping { time: SimTime::from_millis(1_500), src: ring.h1(), dst: ring.h2(), id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        // The reroute trigger at 1 s.
        engine.inject_at(SimTime::from_secs(1), ring.h1(), ring.trigger_packet());
        let result = engine.run_until(SimTime::from_secs(3));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o[0].replied.is_some(), "healthy path works");
        assert!(!o[1].request_delivered, "cut path drops");
        assert!(o[2].replied.is_some(), "rerouted path recovers");
        assert!(result.stats.drop_count(Some(DropReason::LinkDown)) >= 1);
        verify_nes_run(&result).expect("failure-recovery run is consistent");
    }

    /// Failures are inert before their scheduled time and direction-scoped.
    #[test]
    fn failure_injection_is_scoped() {
        let ring = Ring::new(2);
        let topo = ring.sim_topology(SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            ring.nes(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        // Fail only the direction NOT used by the clockwise request path;
        // the reply comes back along its own shortest path (distance ties
        // break clockwise), so traffic is unaffected.
        engine.fail_link_at(SimTime::ZERO, Loc::new(3, 2), Loc::new(2, 1));
        let pings =
            vec![Ping { time: SimTime::from_millis(1), src: ring.h1(), dst: ring.h2(), id: 1 }];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(1));
        assert!(ping_outcomes(&pings, &result.stats)[0].replied.is_some());
    }
}
