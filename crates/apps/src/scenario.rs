//! Shared glue for the case studies: symbol environments, topology
//! conversion, and canned run helpers.

use std::collections::BTreeMap;

use netkat::Value;
use netsim::{SimTime, SimTopology};
use stateful_netkat::NetworkSpec;

/// Host identifiers used across the paper's examples: `Hn` is numbered
/// `100 + n`, keeping host node ids disjoint from switch ids `1..=4`.
pub const H1: u64 = 101;
/// Host 2.
pub const H2: u64 = 102;
/// Host 3.
pub const H3: u64 = 103;
/// Host 4 (the "external" host in most examples).
pub const H4: u64 = 104;

/// The symbol environment mapping `H1..H4` for the Fig. 9 program sources.
pub fn host_env() -> BTreeMap<String, Value> {
    BTreeMap::from([
        ("H1".to_string(), H1),
        ("H2".to_string(), H2),
        ("H3".to_string(), H3),
        ("H4".to_string(), H4),
    ])
}

/// Converts a compile-time [`NetworkSpec`] into a simulation topology with
/// uniform link latency and optional link capacity.
pub fn sim_topology(
    spec: &NetworkSpec,
    link_latency: SimTime,
    capacity: Option<u64>,
) -> SimTopology {
    let mut topo = SimTopology::new(spec.switches.iter().copied());
    for &(host, at) in &spec.hosts {
        topo = topo.host(host, at);
    }
    for &(src, dst) in &spec.links {
        topo = topo.link(netsim::LinkSpec { src, dst, latency: link_latency, capacity });
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::Loc;

    #[test]
    fn topology_conversion_preserves_structure() {
        let spec = NetworkSpec::new([1, 4])
            .host(H1, Loc::new(1, 2))
            .host(H4, Loc::new(4, 2))
            .bilink(Loc::new(1, 1), Loc::new(4, 1));
        let topo = sim_topology(&spec, SimTime::from_micros(50), None);
        assert_eq!(topo.switches(), &[1, 4]);
        assert_eq!(topo.attachment(H1), Some(Loc::new(1, 2)));
        assert_eq!(topo.links().len(), 2);
    }

    #[test]
    fn env_maps_all_hosts() {
        let env = host_env();
        assert_eq!(env["H1"], H1);
        assert_eq!(env["H4"], H4);
        assert_eq!(env.len(), 4);
    }
}
