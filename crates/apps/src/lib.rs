//! # edn-apps
//!
//! The event-driven network applications evaluated in Section 5 of
//! *Event-Driven Network Programming* (PLDI 2016):
//!
//! * [`firewall`] — the stateful firewall (Figs. 8(a)/9(a), Fig. 11);
//! * [`firewall2`] — a two-flow firewall: the Fig. 3(a) diamond with
//!   per-flow state slots and concurrent compatible events;
//! * [`learning`] — the learning switch (Figs. 8(b)/9(b), Fig. 12);
//! * [`authentication`] — port-knocking access control (Figs. 8(c)/9(c),
//!   Fig. 13);
//! * [`bandwidth_cap`] — the n-packet cap (Figs. 8(d)/9(d), Fig. 14);
//! * [`ids`] — the intrusion detection system (Figs. 8(e)/9(e), Fig. 15);
//! * [`ring`] — the synthetic scalability ring (Section 5.2, Fig. 16);
//! * [`conflict`] — the locality programs P1/P2 of Section 2 (Lemma 1's
//!   impossibility, demonstrated empirically);
//! * [`generated`] — the firewall and learning switch lifted to arbitrary
//!   `edn-topo` generated topologies (fat-trees, tori, random graphs), the
//!   scale-harness workloads.
//!
//! Each case-study module carries the Fig. 9 program in the concrete
//! Stateful NetKAT syntax, the Fig. 8 topology, and a `nes()` constructor
//! running the full pipeline (parse → project/extract → ETS → NES).
//!
//! ```
//! let nes = edn_apps::firewall::nes();
//! assert_eq!(nes.events().len(), 1);
//! assert!(nes.is_locally_determined(4));
//! ```

#![warn(missing_docs)]

pub mod authentication;
pub mod bandwidth_cap;
pub mod conflict;
pub mod firewall;
pub mod firewall2;
pub mod generated;
pub mod ids;
pub mod learning;
pub mod ring;
pub mod scenario;

pub use scenario::{host_env, sim_topology, H1, H2, H3, H4};
