//! The case-study applications generalized to *generated* topologies.
//!
//! The hand-written firewall and learning-switch programs (Figs. 9(a)/(b))
//! are tied to their 2- and 3-switch Fig. 8 topologies. The builders here
//! lift both applications to any connected [`GenTopology`] — fat-trees,
//! tori, rings, random graphs — by constructing the NES directly from
//! shortest-path flow tables, the same way the paper auto-generates its
//! Section 5.2 scalability programs. This is what lets the consistency
//! machinery be exercised at hundred-switch scale instead of on toys.

use edn_core::{Event, EventId, EventSet, EventStructure, NetworkEventStructure};
use edn_topo::{config_from_rules, shortest_path_rules, GenTopology};
use netkat::{Action, ActionSet, Field, Loc, Match, Pred, Rule};

/// The VLAN value stamped on pre-learning flood copies so downstream
/// switches can steer them to the shadow host without rewriting `ip_dst`.
pub const FLOOD_MARK: u64 = 1;

/// The port at `dst_sw` where traffic from the host attached at `src_at`
/// arrives, following the deterministic shortest path.
///
/// # Panics
///
/// Panics if `dst_sw` is unreachable from `src_at.sw`.
fn ingress_port(gen: &GenTopology, src_at: Loc, dst_sw: u64) -> u64 {
    if src_at.sw == dst_sw {
        return src_at.pt;
    }
    let path = gen
        .sim()
        .route(src_at.sw, dst_sw)
        .unwrap_or_else(|| panic!("no route from switch {} to {dst_sw}", src_at.sw));
    path.last().expect("distinct switches give a nonempty path").dst.pt
}

/// The output port at `sw` toward the host attached at `dst_at`.
fn port_toward(gen: &GenTopology, sw: u64, dst_at: Loc) -> u64 {
    if sw == dst_at.sw {
        return dst_at.pt;
    }
    *gen.sim()
        .next_hop_ports(dst_at.sw)
        .get(&sw)
        .unwrap_or_else(|| panic!("no route from switch {sw} to {}", dst_at.sw))
}

/// Builds a stateful firewall NES over an arbitrary generated topology.
///
/// Semantics as in Figs. 8(a)/9(a), lifted: `outside → inside` traffic is
/// blocked at `outside`'s attachment switch until `inside` has contacted
/// `outside`; the single event is `inside`'s traffic (`ip_src = inside &
/// ip_dst = outside`) arriving at `outside`'s attachment switch on the
/// shortest path's ingress port. The source conjunct matters on generated
/// topologies: shortest paths converge, so third-party traffic to `outside`
/// shares that ingress port and must not open the firewall. All other pairs
/// forward on shortest paths throughout.
///
/// # Panics
///
/// Panics if either id is not a host of `gen`, the hosts are equal, or
/// their attachment switches cannot reach each other.
pub fn firewall_nes(gen: &GenTopology, inside: u64, outside: u64) -> NetworkEventStructure {
    assert_ne!(inside, outside, "firewall endpoints must differ");
    let in_at = gen.attachment(inside).expect("inside must be a host");
    let out_at = gen.attachment(outside).expect("outside must be a host");
    let open = shortest_path_rules(gen);
    let mut closed = open.clone();
    closed.get_mut(&out_at.sw).expect("attachment switches carry rules").insert(
        0,
        Rule::new(
            Match::new().with(Field::IpSrc, outside).with(Field::IpDst, inside),
            ActionSet::drop(),
        ),
    );
    let e0 = EventId::new(0);
    let es = EventStructure::new(
        vec![Event::new(
            e0,
            Pred::test(Field::IpSrc, inside).and(Pred::test(Field::IpDst, outside)),
            Loc::new(out_at.sw, ingress_port(gen, in_at, out_at.sw)),
        )],
        [EventSet::singleton(e0)],
    );
    NetworkEventStructure::new(
        es,
        [
            (EventSet::empty(), config_from_rules(gen, closed)),
            (EventSet::singleton(e0), config_from_rules(gen, open)),
        ],
    )
    .expect("both event-sets have configurations")
}

/// Builds a learning-switch NES over an arbitrary generated topology.
///
/// Semantics as in Figs. 8(b)/9(b), lifted: until `learner` has heard back
/// from `target`, traffic `learner → target` is "flooded" — a second copy,
/// stamped [`FLOOD_MARK`], is steered to the `shadow` host; once `target`'s
/// reply (`ip_src = target & ip_dst = learner`) reaches `learner`'s
/// attachment switch (the event), forwarding collapses to point-to-point
/// shortest paths. The source conjunct keeps third-party traffic to
/// `learner` on the shared ingress port from ending the flooding phase.
///
/// # Panics
///
/// Panics if the three ids are not distinct hosts of `gen`, or the relevant
/// attachment switches cannot reach each other.
pub fn learning_nes(
    gen: &GenTopology,
    learner: u64,
    target: u64,
    shadow: u64,
) -> NetworkEventStructure {
    assert!(
        learner != target && learner != shadow && target != shadow,
        "learner, target, and shadow must be distinct"
    );
    let learner_at = gen.attachment(learner).expect("learner must be a host");
    let target_at = gen.attachment(target).expect("target must be a host");
    let shadow_at = gen.attachment(shadow).expect("shadow must be a host");
    let learned = shortest_path_rules(gen);
    let mut flooding = learned.clone();
    // At the learner's switch, the target rule becomes a two-way multicast:
    // the original shortest-path copy plus a marked copy toward the shadow.
    let at_learner = flooding.get_mut(&learner_at.sw).expect("attachment switches carry rules");
    let rule = at_learner
        .iter_mut()
        .find(|r| r.pattern.get(Field::IpDst) == Some(target))
        .expect("the target is routable from the learner's switch");
    let shadow_copy = Action::assign(Field::Port, port_toward(gen, learner_at.sw, shadow_at))
        .set(Field::Vlan, FLOOD_MARK);
    rule.actions = rule.actions.union(&ActionSet::single(shadow_copy));
    // Downstream of the learner's switch, marked copies ride dedicated
    // rules toward the shadow (prepended: first match wins).
    if shadow_at.sw != learner_at.sw {
        let path = gen
            .sim()
            .route(learner_at.sw, shadow_at.sw)
            .expect("shadow is reachable from the learner's switch");
        let toward_shadow = gen.sim().next_hop_ports(shadow_at.sw);
        for link in &path {
            let sw = link.dst.sw;
            let out = if sw == shadow_at.sw { shadow_at.pt } else { toward_shadow[&sw] };
            flooding.get_mut(&sw).expect("switches on a route carry rules").insert(
                0,
                Rule::new(
                    Match::new().with(Field::Vlan, FLOOD_MARK),
                    ActionSet::single(Action::assign(Field::Port, out)),
                ),
            );
        }
    }
    let e0 = EventId::new(0);
    let es = EventStructure::new(
        vec![Event::new(
            e0,
            Pred::test(Field::IpSrc, target).and(Pred::test(Field::IpDst, learner)),
            Loc::new(learner_at.sw, ingress_port(gen, target_at, learner_at.sw)),
        )],
        [EventSet::singleton(e0)],
    );
    NetworkEventStructure::new(
        es,
        [
            (EventSet::empty(), config_from_rules(gen, flooding)),
            (EventSet::singleton(e0), config_from_rules(gen, learned)),
        ],
    )
    .expect("both event-sets have configurations")
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_topo::{fat_tree, linear, LinkProfile, TierProfile};
    use nes_runtime::{nes_engine, verify_nes_run};
    use netsim::traffic::{
        ping_outcomes, proto_packets_delivered, schedule_pings, Ping, ScenarioHosts,
        PROTO_PING_REQUEST,
    };
    use netsim::{SimParams, SimTime};

    #[test]
    fn generated_firewall_blocks_then_opens_on_a_chain() {
        let gen = linear(3, LinkProfile::default());
        let (inside, outside) = (gen.hosts()[0], gen.hosts()[2]);
        let mut engine = nes_engine(
            firewall_nes(&gen, inside, outside),
            gen.sim().clone(),
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![
            Ping { time: SimTime::from_millis(10), src: outside, dst: inside, id: 1 },
            Ping { time: SimTime::from_millis(100), src: inside, dst: outside, id: 2 },
            Ping { time: SimTime::from_millis(200), src: outside, dst: inside, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(!o[0].request_delivered, "outside->inside blocked before the event");
        assert!(o[1].replied.is_some(), "inside->outside answered");
        assert!(o[2].replied.is_some(), "outside->inside allowed after the event");
        verify_nes_run(&result).expect("generated firewall run is consistent");
    }

    #[test]
    fn generated_firewall_works_across_fat_tree_pods() {
        let gen = fat_tree(4, TierProfile::default());
        // First and last host: different pods, so the path crosses the core.
        let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().unwrap());
        let nes = firewall_nes(&gen, inside, outside);
        assert_eq!(nes.events().len(), 1);
        let mut engine = nes_engine(
            nes,
            gen.sim().clone(),
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![
            Ping { time: SimTime::from_millis(10), src: outside, dst: inside, id: 1 },
            Ping { time: SimTime::from_millis(100), src: inside, dst: outside, id: 2 },
            Ping { time: SimTime::from_millis(200), src: outside, dst: inside, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(!o[0].request_delivered && o[1].replied.is_some() && o[2].replied.is_some());
        verify_nes_run(&result).expect("fat-tree firewall run is consistent");
    }

    #[test]
    fn generated_firewall_leaves_third_parties_alone() {
        // On a fat-tree, hosts not named by the firewall ping freely in
        // either state — and, crucially, a third party contacting `outside`
        // does NOT open the firewall (the event requires ip_src = inside,
        // not just any traffic on the shared ingress port).
        let gen = fat_tree(4, TierProfile::default());
        let (inside, outside) = (gen.hosts()[0], gen.hosts()[15]);
        let (a, b) = (gen.hosts()[5], gen.hosts()[10]);
        let mut engine = nes_engine(
            firewall_nes(&gen, inside, outside),
            gen.sim().clone(),
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![
            Ping { time: SimTime::from_millis(10), src: a, dst: b, id: 1 },
            Ping { time: SimTime::from_millis(20), src: b, dst: outside, id: 2 },
            // After b contacted outside, outside -> inside must STILL be
            // blocked: inside never contacted outside.
            Ping { time: SimTime::from_millis(100), src: outside, dst: inside, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o[0].replied.is_some() && o[1].replied.is_some());
        assert!(!o[2].request_delivered, "third-party traffic must not open the firewall");
        assert!(result.dataplane.fired_sequence().is_empty(), "event must not fire");
        verify_nes_run(&result).expect("closed-firewall run is consistent");
    }

    #[test]
    fn generated_learning_floods_then_learns() {
        let gen = linear(3, LinkProfile::default());
        // Learner at one end, target at the other, shadow in the middle —
        // the flood branch and the target path share the first hop.
        let (target, shadow, learner) = (gen.hosts()[0], gen.hosts()[1], gen.hosts()[2]);
        let mut engine = nes_engine(
            learning_nes(&gen, learner, target, shadow),
            gen.sim().clone(),
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        let pings: Vec<Ping> = (0..10)
            .map(|i| Ping {
                time: SimTime::from_millis(100 * i + 10),
                src: learner,
                dst: target,
                id: i,
            })
            .collect();
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        let to_target = proto_packets_delivered(&result.stats, target, PROTO_PING_REQUEST);
        let to_shadow = proto_packets_delivered(&result.stats, shadow, PROTO_PING_REQUEST);
        assert_eq!(to_target, 10, "target receives every request");
        assert!((1..=2).contains(&to_shadow), "flooding stops after learning, got {to_shadow}");
        assert!(ping_outcomes(&pings, &result.stats).iter().all(|p| p.replied.is_some()));
        verify_nes_run(&result).expect("generated learning run is consistent");
    }

    #[test]
    fn generated_learning_on_a_fat_tree() {
        let gen = fat_tree(4, TierProfile::default());
        // Learner and target in different pods; shadow in a third pod.
        let (learner, target, shadow) = (gen.hosts()[0], gen.hosts()[15], gen.hosts()[8]);
        let mut engine = nes_engine(
            learning_nes(&gen, learner, target, shadow),
            gen.sim().clone(),
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        let pings: Vec<Ping> = (0..6)
            .map(|i| Ping {
                time: SimTime::from_millis(100 * i + 10),
                src: learner,
                dst: target,
                id: i,
            })
            .collect();
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        let to_target = proto_packets_delivered(&result.stats, target, PROTO_PING_REQUEST);
        let to_shadow = proto_packets_delivered(&result.stats, shadow, PROTO_PING_REQUEST);
        assert_eq!(to_target, 6);
        assert!(to_shadow <= 2, "flooding stops after learning, got {to_shadow}");
        verify_nes_run(&result).expect("fat-tree learning run is consistent");
    }
}
