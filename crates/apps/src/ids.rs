//! The intrusion detection system (Figs. 8(e)/9(e)).
//!
//! All traffic is initially allowed; if H4 scans the internal hosts in a
//! suspicious order (H1 then H2), its access to H3 is cut off.

use edn_core::NetworkEventStructure;
#[cfg(test)]
use netkat::Loc;
use stateful_netkat::{build_ets, parse, NetworkSpec, SPolicy};

use crate::scenario::host_env;

/// The Fig. 9(e) program source.
pub const SOURCE: &str = "\
    pt=2 & ip_dst=H1; pt<-1; (state=[0]; (4:1)->(1:1)<state<-[1]> \
                              + state!=[0]; (4:1)->(1:1)); pt<-2 \
    + pt=2 & ip_dst=H2; pt<-3; (state=[1]; (4:3)->(2:1)<state<-[2]> \
                                + state!=[1]; (4:3)->(2:1)); pt<-2 \
    + pt=2 & ip_dst=H3; pt<-4; state!=[2]; (4:4)->(3:1); pt<-2 \
    + pt=2; pt<-1; ((1:1)->(4:1) + (2:1)->(4:3) + (3:1)->(4:4)); pt<-2";

/// Parses the IDS program.
///
/// # Panics
///
/// Panics if the built-in source fails to parse (a bug).
pub fn program() -> SPolicy {
    parse(SOURCE, &host_env()).expect("built-in IDS program parses")
}

/// The topology (same as authentication, Fig. 8(c)/(e)).
pub fn spec() -> NetworkSpec {
    crate::authentication::spec()
}

/// Builds the IDS NES (the same chain shape as authentication, but with all
/// traffic allowed until the suspicious sequence completes).
///
/// # Panics
///
/// Panics if compilation fails (a bug: the program is well-formed).
pub fn nes() -> NetworkEventStructure {
    build_ets(&program(), &[0], &spec())
        .expect("IDS compiles")
        .to_nes()
        .expect("IDS ETS is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sim_topology, H1, H2, H3, H4};
    use nes_runtime::{nes_engine, uncoordinated_engine, verify_nes_run};
    use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
    use netsim::{SimParams, SimTime};

    #[test]
    fn nes_shape() {
        let nes = nes();
        assert_eq!(nes.events().len(), 2);
        assert_eq!(nes.event_sets().len(), 3);
        assert_eq!(nes.events()[0].loc, Loc::new(1, 1));
        assert_eq!(nes.events()[1].loc, Loc::new(2, 1));
        assert!(nes.is_locally_determined(4));
    }

    /// Fig. 15(a): H3, H2, H1 all reachable; the scan (H1 then H2) cuts off
    /// H3.
    #[test]
    fn suspicious_scan_is_thwarted() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine =
            nes_engine(nes(), topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        let s = SimTime::from_millis;
        let pings = vec![
            Ping { time: s(10), src: H4, dst: H3, id: 1 }, // allowed
            Ping { time: s(100), src: H4, dst: H2, id: 2 }, // allowed, no transition
            Ping { time: s(200), src: H4, dst: H1, id: 3 }, // allowed, state -> 1
            Ping { time: s(300), src: H4, dst: H2, id: 4 }, // allowed, state -> 2
            Ping { time: s(400), src: H4, dst: H3, id: 5 }, // blocked!
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(3));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o[0].replied.is_some(), "H3 open initially");
        assert!(o[1].replied.is_some(), "H2 open");
        assert!(o[2].replied.is_some(), "H1 open");
        assert!(o[3].replied.is_some(), "H2 still open");
        assert!(!o[4].request_delivered, "H3 cut off after the scan");
        verify_nes_run(&result).expect("IDS run is consistent");
    }

    /// H2-before-H1 is not the suspicious order: H3 stays reachable.
    #[test]
    fn benign_order_keeps_h3_open() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine =
            nes_engine(nes(), topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        let s = SimTime::from_millis;
        let pings = vec![
            Ping { time: s(10), src: H4, dst: H2, id: 1 },
            Ping { time: s(100), src: H4, dst: H1, id: 2 },
            Ping { time: s(200), src: H4, dst: H3, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(3));
        let o = ping_outcomes(&pings, &result.stats);
        // H2 first does not advance the automaton; H1 then moves 0 -> 1;
        // H3 remains reachable (state 2 never reached).
        assert!(o[2].replied.is_some(), "H3 stays open in benign order");
        verify_nes_run(&result).expect("IDS run is consistent");
    }

    /// Fig. 15(b): under the uncoordinated baseline the scan completes but
    /// H4→H3 stays open temporarily.
    #[test]
    fn uncoordinated_leaves_h3_open() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine = uncoordinated_engine(
            nes(),
            topo,
            SimParams::default(),
            SimTime::from_millis(800),
            13,
            Box::new(ScenarioHosts::new()),
        );
        let s = SimTime::from_millis;
        let pings = vec![
            Ping { time: s(10), src: H4, dst: H1, id: 1 },
            // Wait for the first push so the H2 probe actually transitions.
            Ping { time: s(1000), src: H4, dst: H2, id: 2 },
            // Probe H3 immediately after the scan completes: stale config.
            Ping { time: s(1100), src: H4, dst: H3, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(4));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o[0].replied.is_some() && o[1].replied.is_some(), "scan completes");
        assert!(o[2].replied.is_some(), "H3 wrongly still open right after the scan");
    }
}
