//! The learning switch (Figs. 8(b)/9(b)).
//!
//! Traffic from H4 to H1 is flooded towards both H1 and H2 until H4 hears
//! back from H1, at which point switch 4 "learns" H1's location and uses
//! point-to-point forwarding.

use edn_core::NetworkEventStructure;
use netkat::Loc;
use stateful_netkat::{build_ets, parse, NetworkSpec, SPolicy};

use crate::scenario::host_env;

/// The Fig. 9(b) program source.
pub const SOURCE: &str = "\
    pt=2 & ip_dst=H1; (pt<-1; (4:1)->(1:1) + state=[0]; pt<-3; (4:3)->(2:1)); pt<-2 \
    + pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2 \
    + pt=2; pt<-1; (2:1)->(4:3); pt<-2";

/// Parses the learning-switch program.
///
/// # Panics
///
/// Panics if the built-in source fails to parse (a bug).
pub fn program() -> SPolicy {
    parse(SOURCE, &host_env()).expect("built-in learning-switch program parses")
}

/// The Fig. 8(b) topology: H1 — s1 — s4 — H4, H2 — s2 — s4.
pub fn spec() -> NetworkSpec {
    NetworkSpec::new([1, 2, 4])
        .host(crate::scenario::H1, Loc::new(1, 2))
        .host(crate::scenario::H2, Loc::new(2, 2))
        .host(crate::scenario::H4, Loc::new(4, 2))
        .bilink(Loc::new(1, 1), Loc::new(4, 1))
        .bilink(Loc::new(2, 1), Loc::new(4, 3))
}

/// Builds the learning-switch NES (one event: H1's reply reaching s4).
///
/// # Panics
///
/// Panics if compilation fails (a bug: the program is well-formed).
pub fn nes() -> NetworkEventStructure {
    build_ets(&program(), &[0], &spec())
        .expect("learning switch compiles")
        .to_nes()
        .expect("learning switch ETS is well-formed")
}

/// The learning switch generalized to an arbitrary generated topology:
/// `learner`/`target`/`shadow` in place of H4/H1/H2, built from
/// shortest-path flow tables instead of the Fig. 9(b) program (see
/// [`crate::generated::learning_nes`]).
///
/// # Panics
///
/// Panics if the ids are not three distinct, mutually reachable hosts of
/// `topo`.
pub fn nes_on(
    topo: &edn_topo::GenTopology,
    learner: u64,
    target: u64,
    shadow: u64,
) -> NetworkEventStructure {
    crate::generated::learning_nes(topo, learner, target, shadow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sim_topology, H1, H2, H4};
    use nes_runtime::{nes_engine, uncoordinated_engine, verify_nes_run};
    use netkat::Field;
    use netsim::traffic::{
        ping_outcomes, proto_packets_delivered, schedule_pings, Ping, ScenarioHosts,
        PROTO_PING_REQUEST,
    };
    use netsim::{SimParams, SimTime};

    #[test]
    fn nes_shape() {
        let nes = nes();
        assert_eq!(nes.events().len(), 1);
        assert_eq!(nes.event_sets().len(), 2);
        assert_eq!(nes.events()[0].loc, Loc::new(4, 1));
        assert!(nes.is_locally_determined(4));
    }

    /// Fig. 12(a): the first H4→H1 packet floods to H2 as well; once H1
    /// replies, subsequent packets go only to H1.
    #[test]
    fn flooding_stops_after_learning() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine =
            nes_engine(nes(), topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        let pings: Vec<Ping> = (0..10)
            .map(|i| Ping { time: SimTime::from_millis(100 * i + 10), src: H4, dst: H1, id: i })
            .collect();
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        // H1 receives every request; H2 receives only the pre-learning
        // flood (the first ping; its copy count depends on timing but must
        // be far fewer than 10).
        let to_h1 = proto_packets_delivered(&result.stats, H1, PROTO_PING_REQUEST);
        let to_h2 = proto_packets_delivered(&result.stats, H2, PROTO_PING_REQUEST);
        assert_eq!(to_h1, 10);
        assert!(to_h2 <= 2, "flooded copies stop after learning, got {to_h2}");
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o.iter().all(|p| p.replied.is_some()), "all pings answered");
        verify_nes_run(&result).expect("learning-switch run is consistent");
    }

    /// Fig. 12(b): the uncoordinated baseline keeps flooding to H2 after
    /// H4 has already heard from H1.
    #[test]
    fn uncoordinated_keeps_flooding() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine = uncoordinated_engine(
            nes(),
            topo,
            SimParams::default(),
            SimTime::from_millis(2000),
            3,
            Box::new(ScenarioHosts::new()),
        );
        let pings: Vec<Ping> = (0..10)
            .map(|i| Ping { time: SimTime::from_millis(100 * i + 10), src: H4, dst: H1, id: i })
            .collect();
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(3));
        let to_h2 = proto_packets_delivered(&result.stats, H2, PROTO_PING_REQUEST);
        assert!(to_h2 >= 5, "stale config keeps flooding, got {to_h2}");
    }

    #[test]
    fn event_guard_is_dst_h4() {
        let nes = nes();
        let e = &nes.events()[0];
        let pk = netkat::Packet::new().with(Field::IpDst, H4);
        assert!(e.matches(&pk, Loc::new(4, 1)));
        let other = netkat::Packet::new().with(Field::IpDst, H1);
        assert!(!e.matches(&other, Loc::new(4, 1)));
    }
}
