//! The locality programs P1 and P2 of Section 2 — the empirical
//! counterpart of Lemma 1.
//!
//! Both programs have two *incompatible* events (at most one may take
//! effect). In **P2** they occur at the same switch, so the switch itself
//! resolves the race: the NES is locally-determined and implementable. In
//! **P1** they occur at different switches; no bounded-time implementation
//! can resolve the race (Lemma 1), and deploying it anyway produces
//! conflicting switch states that the Definition 6 checker flags.

use edn_core::{Config, Event, EventId, EventSet, EventStructure, NetworkEventStructure};
use netkat::{Action, ActionSet, Field, FlowTable, Loc, Match, Pred, Rule};
use netsim::{SimTime, SimTopology};

/// Hosts: H1 at s1:2 sends to H2 (s2:2) and H4 (s4:2); switch s3 joins
/// everything (star topology: s3 is the hub).
pub const H1: u64 = 101;
/// Receiver A.
pub const H2: u64 = 102;
/// Receiver B.
pub const H4: u64 = 104;

const HUB: u64 = 3;

/// Which variant: conflicting events at different switches (P1) or the same
/// switch (P2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// P1: `e1` fires at s2, `e2` at s4 — **not** locally determined.
    DifferentSwitches,
    /// P2: both events fire at the hub s3 — locally determined.
    SameSwitch,
}

fn star_config(marker: u64) -> Config {
    // Hub s3 routes by destination; edge switches relay. Ports on the hub:
    // 1 -> s1, 2 -> s2, 4 -> s4. Edge switches: port 1 to hub, port 2 to
    // host. The marker value keeps otherwise-equal configurations distinct
    // (it models the "responder" choice, carried in a vlan rewrite).
    let mut c = Config::new();
    let hub_rules = [(H1, 1u64), (H2, 2), (H4, 4)]
        .into_iter()
        .map(|(dst, out)| {
            Rule::new(
                Match::new().with(Field::IpDst, dst),
                ActionSet::single(Action::assign(Field::Port, out).set(Field::Vlan, marker)),
            )
        })
        .collect::<Vec<_>>();
    c.install(HUB, FlowTable::from_rules(hub_rules));
    for (sw, host) in [(1u64, H1), (2, H2), (4, H4)] {
        let rules = vec![
            Rule::new(
                Match::new().with(Field::IpDst, host),
                ActionSet::single(Action::assign(Field::Port, 2)),
            ),
            Rule::new(Match::new(), ActionSet::single(Action::assign(Field::Port, 1))),
        ];
        c.install(sw, FlowTable::from_rules(rules));
        c.add_host(host, Loc::new(sw, 2));
        c.add_link(Loc::new(sw, 1), Loc::new(HUB, sw));
        c.add_link(Loc::new(HUB, sw), Loc::new(sw, 1));
    }
    c
}

/// Builds the NES of the chosen variant: events `e1`/`e2` are the arrival
/// of H1's packet at the respective location; `{e1, e2}` is inconsistent.
pub fn nes(variant: Variant) -> NetworkEventStructure {
    let e1 = EventId::new(0);
    let e2 = EventId::new(1);
    let (loc1, loc2) = match variant {
        // P1: arrival at the edge switches s2 / s4 (different switches).
        Variant::DifferentSwitches => (Loc::new(2, 1), Loc::new(4, 1)),
        // P2: arrival at the hub, distinguished by destination port.
        Variant::SameSwitch => (Loc::new(HUB, 1), Loc::new(HUB, 1)),
    };
    let (p1, p2) = match variant {
        Variant::DifferentSwitches => (Pred::test(Field::IpDst, H2), Pred::test(Field::IpDst, H4)),
        Variant::SameSwitch => (Pred::test(Field::IpDst, H2), Pred::test(Field::IpDst, H4)),
    };
    let es = EventStructure::new(
        vec![Event::new(e1, p1, loc1), Event::new(e2, p2, loc2)],
        // No member contains both: they are incompatible.
        [EventSet::singleton(e1), EventSet::singleton(e2)],
    );
    NetworkEventStructure::new(
        es,
        [
            (EventSet::empty(), star_config(0)),
            (EventSet::singleton(e1), star_config(1)),
            (EventSet::singleton(e2), star_config(2)),
        ],
    )
    .expect("all three event-sets covered")
}

/// The simulation topology shared by both variants.
pub fn sim_topology() -> SimTopology {
    let mut topo = SimTopology::new([1, 2, HUB, 4]);
    for (sw, host) in [(1u64, H1), (2, H2), (4, H4)] {
        topo = topo.host(host, Loc::new(sw, 2)).bilink(
            Loc::new(sw, 1),
            Loc::new(HUB, sw),
            SimTime::from_micros(80),
            None,
        );
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use nes_runtime::{nes_engine, verify_nes_run};
    use netkat::Packet;
    use netsim::traffic::{ping_request, ScenarioHosts};
    use netsim::SimParams;

    fn probe(dst: u64, id: u64) -> Packet {
        ping_request(H1, dst, id)
    }

    #[test]
    fn p2_is_locally_determined_p1_is_not() {
        assert!(nes(Variant::SameSwitch).is_locally_determined(4));
        assert!(!nes(Variant::DifferentSwitches).is_locally_determined(4));
    }

    /// P2: both probes race to the hub; exactly one event fires (the hub
    /// resolves the race) and the run is consistent.
    #[test]
    fn p2_hub_resolves_the_race() {
        let mut engine = nes_engine(
            nes(Variant::SameSwitch),
            sim_topology(),
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        // Simultaneous injection of both candidate triggers.
        engine.inject_at(SimTime::from_millis(1), H1, probe(H2, 1));
        engine.inject_at(SimTime::from_millis(1), H1, probe(H4, 2));
        let result = engine.run_until(SimTime::from_secs(2));
        assert_eq!(result.dataplane.fired_sequence().len(), 1, "exactly one event wins");
        verify_nes_run(&result).expect("P2 runs are consistent");
    }

    /// P1: the two edge switches each fire "their" event before hearing
    /// about the other — a conflicting global state that cannot be
    /// reconciled. The checker flags the run (Lemma 1: without the locality
    /// restriction, bounded-time implementations are impossible).
    #[test]
    fn p1_races_into_an_inconsistent_state() {
        let mut engine = nes_engine(
            nes(Variant::DifferentSwitches),
            sim_topology(),
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        engine.inject_at(SimTime::from_millis(1), H1, probe(H2, 1));
        engine.inject_at(SimTime::from_millis(1), H1, probe(H4, 2));
        let result = engine.run_until(SimTime::from_secs(2));
        // Both switches adopted conflicting events.
        assert_eq!(
            result.dataplane.fired_sequence().len(),
            2,
            "both conflicting events fire at their own switches"
        );
        let verdict = verify_nes_run(&result);
        assert!(verdict.is_err(), "the checker must flag the inconsistent P1 run, got {verdict:?}");
    }

    /// With enough separation in time, P1 behaves: the first event's digest
    /// reaches the other switch before the second candidate arrives, so the
    /// second event is suppressed.
    #[test]
    fn p1_with_causal_separation_is_fine() {
        let mut engine = nes_engine(
            nes(Variant::DifferentSwitches),
            sim_topology(),
            SimParams::default(),
            true, // broadcast spreads the first event quickly
            Box::new(ScenarioHosts::new()),
        );
        engine.inject_at(SimTime::from_millis(1), H1, probe(H2, 1));
        // The second candidate arrives long after the broadcast.
        engine.inject_at(SimTime::from_secs(1), H1, probe(H4, 2));
        let result = engine.run_until(SimTime::from_secs(3));
        assert_eq!(result.dataplane.fired_sequence().len(), 1, "only the first fires");
        verify_nes_run(&result).expect("separated P1 run is consistent");
    }
}
