//! The authentication (port-knocking) system (Figs. 8(c)/9(c)).
//!
//! The untrusted host H4 must contact H1, then H2 — in that order — before
//! it is allowed to reach H3.

use edn_core::NetworkEventStructure;
use netkat::Loc;
use stateful_netkat::{build_ets, parse, NetworkSpec, SPolicy};

use crate::scenario::host_env;

/// The Fig. 9(c) program source.
pub const SOURCE: &str = "\
    state=[0] & pt=2 & ip_dst=H1; pt<-1; (4:1)->(1:1)<state<-[1]>; pt<-2 \
    + state=[1] & pt=2 & ip_dst=H2; pt<-3; (4:3)->(2:1)<state<-[2]>; pt<-2 \
    + state=[2] & pt=2 & ip_dst=H3; pt<-4; (4:4)->(3:1); pt<-2 \
    + pt=2; pt<-1; ((1:1)->(4:1) + (2:1)->(4:3) + (3:1)->(4:4)); pt<-2";

/// Parses the authentication program.
///
/// # Panics
///
/// Panics if the built-in source fails to parse (a bug).
pub fn program() -> SPolicy {
    parse(SOURCE, &host_env()).expect("built-in authentication program parses")
}

/// The Fig. 8(c) topology: H1/H2/H3 behind s1/s2/s3, all joined to s4
/// where H4 sits.
pub fn spec() -> NetworkSpec {
    NetworkSpec::new([1, 2, 3, 4])
        .host(crate::scenario::H1, Loc::new(1, 2))
        .host(crate::scenario::H2, Loc::new(2, 2))
        .host(crate::scenario::H3, Loc::new(3, 2))
        .host(crate::scenario::H4, Loc::new(4, 2))
        .bilink(Loc::new(1, 1), Loc::new(4, 1))
        .bilink(Loc::new(2, 1), Loc::new(4, 3))
        .bilink(Loc::new(3, 1), Loc::new(4, 4))
}

/// Builds the authentication NES:
/// `{E₀=∅ → E₁={(dst=H1, 1:1)} → E₂={(dst=H1, 1:1), (dst=H2, 2:1)}}`.
///
/// # Panics
///
/// Panics if compilation fails (a bug: the program is well-formed).
pub fn nes() -> NetworkEventStructure {
    build_ets(&program(), &[0], &spec())
        .expect("authentication compiles")
        .to_nes()
        .expect("authentication ETS is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sim_topology, H1, H2, H3, H4};
    use edn_core::{EventId, EventSet};
    use nes_runtime::{nes_engine, uncoordinated_engine, verify_nes_run};
    use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
    use netsim::{SimParams, SimTime};

    #[test]
    fn nes_is_a_causal_chain() {
        let nes = nes();
        assert_eq!(nes.events().len(), 2);
        assert_eq!(nes.event_sets().len(), 3);
        assert_eq!(nes.events()[0].loc, Loc::new(1, 1));
        assert_eq!(nes.events()[1].loc, Loc::new(2, 1));
        // e1 requires e0.
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        assert!(!nes.structure().enabled(EventSet::empty(), e1));
        assert!(nes.structure().enabled(EventSet::singleton(e0), e1));
        assert!(nes.is_locally_determined(4));
    }

    /// Fig. 13(a): H3/H2 unreachable, knock H1, H3 still unreachable, knock
    /// H2, now H3 answers.
    #[test]
    fn knock_sequence_unlocks_h3() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine =
            nes_engine(nes(), topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        let s = SimTime::from_millis;
        let pings = vec![
            Ping { time: s(10), src: H4, dst: H3, id: 1 },  // fail
            Ping { time: s(100), src: H4, dst: H2, id: 2 }, // fail (wrong order)
            Ping { time: s(200), src: H4, dst: H1, id: 3 }, // knock 1
            Ping { time: s(300), src: H4, dst: H3, id: 4 }, // still fail
            Ping { time: s(400), src: H4, dst: H2, id: 5 }, // knock 2
            Ping { time: s(500), src: H4, dst: H3, id: 6 }, // success
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(3));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(!o[0].request_delivered, "H3 blocked initially");
        assert!(!o[1].request_delivered, "H2 blocked before H1 knock");
        assert!(o[2].replied.is_some(), "H1 reachable");
        assert!(!o[3].request_delivered, "H3 still blocked after one knock");
        assert!(o[4].replied.is_some(), "H2 reachable after H1 knock");
        assert!(o[5].replied.is_some(), "H3 unlocked");
        verify_nes_run(&result).expect("authentication run is consistent");
    }

    /// Fig. 13(b): with the uncoordinated baseline, the H3 probe right
    /// after a completed knock sequence still fails (temporarily).
    #[test]
    fn uncoordinated_lags_behind_the_knocks() {
        let topo = sim_topology(&spec(), SimTime::from_micros(50), None);
        let mut engine = uncoordinated_engine(
            nes(),
            topo,
            SimParams::default(),
            SimTime::from_millis(500),
            11,
            Box::new(ScenarioHosts::new()),
        );
        let s = SimTime::from_millis;
        let pings = vec![
            // Knock 1 lands immediately; the controller push for state [1]
            // arrives ~500 ms later, so knock 2 at 700 ms succeeds; the H3
            // probe at 800 ms races the second push and fails.
            Ping { time: s(10), src: H4, dst: H1, id: 1 },
            Ping { time: s(700), src: H4, dst: H2, id: 2 },
            Ping { time: s(800), src: H4, dst: H3, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(3));
        let o = ping_outcomes(&pings, &result.stats);
        assert!(o[0].replied.is_some(), "knock 1 answered");
        assert!(o[1].replied.is_some(), "knock 2 answered after the first push");
        assert!(!o[2].request_delivered, "H3 blocked although knocks completed");
    }
}
